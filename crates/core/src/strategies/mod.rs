//! Anytime search strategies with reported optimality gaps.
//!
//! The paper's search is exhaustive over `5^k` placements; real kernels
//! have 6–10 arrays, where `5^10 ≈ 10M` candidates makes exhaustive
//! ranking impossible under any interactive deadline. The strategies in
//! this module trade coverage for time *explicitly*: each one returns
//! the usual [`SearchOutcome`](crate::search::SearchOutcome) plus a
//! **sound gap upper bound** in
//! [`EngineStats::gap_upper_bound`](crate::engine::EngineStats), so a
//! caller always knows how far from optimal the answer can be.
//!
//! # Gap semantics
//!
//! Every strategy derives a *floor* `F` — a proven lower bound on the
//! predicted cycles of the true optimum over the request's whole legal
//! space — and reports
//!
//! ```text
//! gap_upper_bound = max(best_found / F − 1, 0)
//! ```
//!
//! which guarantees `optimum ≤ best_found ≤ optimum × (1 + gap)`. The
//! floors come from the branch-and-bound monotone lower bound
//! ([`Engine::lower_bound`]), which never exceeds the model's
//! prediction for any completion of a partial assignment:
//!
//! * [`beam`] — the minimum bound over every prefix it *dropped* (and
//!   every leaf it could not evaluate before the deadline). If nothing
//!   was dropped the search was exhaustive and the gap is 0.
//! * [`halving`] — the minimum bound over every enumerated candidate it
//!   *retired unevaluated*, widened to the all-free floor only when
//!   enumeration itself was truncated by the request limit.
//! * [`local`] — the all-free floor (a stochastic search proves nothing
//!   about the space it never visited).
//!
//! The exact strategies report gap 0 when they complete; when a
//! deadline cuts them short, `search()` falls back to the same floor
//! construction so a partial result still carries a sound bound.
//!
//! # Determinism contract
//!
//! All three strategies follow the branch-and-bound discipline: leaves
//! are evaluated in fixed-size [`BB_BATCH`](crate::search::BB_BATCH)
//! chunks, the deadline is checked **only between chunks**, and at
//! least one chunk is always evaluated — so every returned prediction
//! is bit-identical to what a deadline-free run would have produced,
//! at any worker count. [`local`] goes further: the RNG stream is a
//! pure function of the seed and consumes draws in an order independent
//! of scheduling, so the entire outcome is bit-identical across
//! `--threads 1/2/8`.

pub mod beam;
pub mod halving;
pub mod local;

use hms_types::{ArrayId, MemorySpace, PlacementMap};

use crate::engine::Engine;
use crate::search::SearchRequest;

/// The gap implied by a best-found cost and a sound floor on the
/// optimum. `None` (no legal candidate evaluated) reports 0 — there is
/// nothing to bound.
pub(crate) fn gap_from_floor(best: Option<f64>, floor: f64) -> f64 {
    match best {
        Some(b) if floor > 0.0 && floor.is_finite() => (b / floor - 1.0).max(0.0),
        _ => 0.0,
    }
}

/// The partial-assignment template for a request: candidate arrays
/// free (`None`), everything else pinned to its base space.
pub(crate) fn template(req: &SearchRequest<'_>) -> Vec<Option<MemorySpace>> {
    (0..req.arrays.len())
        .map(|i| {
            let id = ArrayId(i as u32);
            if req.candidates.contains(&id) {
                None
            } else {
                Some(req.base.space(id))
            }
        })
        .collect()
}

/// The weakest sound floor: the bound with every candidate array free.
/// Valid for the whole legal space by the bound's monotonicity.
pub(crate) fn all_free_floor(engine: &Engine<'_>, req: &SearchRequest<'_>) -> f64 {
    engine.lower_bound(&template(req))
}

/// The complete-assignment vector of a fully placed candidate.
pub(crate) fn full_assignment(pm: &PlacementMap, n: usize) -> Vec<Option<MemorySpace>> {
    (0..n).map(|i| Some(pm.space(ArrayId(i as u32)))).collect()
}

/// Floor over a set of *unevaluated* complete candidates: the minimum
/// of their individual bounds, widened to the all-free floor when the
/// enumeration that produced them was `truncated` (candidates beyond
/// the request limit were never materialized, so only the free bound
/// covers them).
pub(crate) fn space_floor<'p>(
    engine: &Engine<'_>,
    req: &SearchRequest<'_>,
    unevaluated: impl Iterator<Item = &'p PlacementMap>,
    truncated: bool,
) -> f64 {
    let n = req.arrays.len();
    let mut floor = f64::INFINITY;
    for pm in unevaluated {
        floor = floor.min(engine.lower_bound(&full_assignment(pm, n)));
    }
    if truncated {
        floor = floor.min(all_free_floor(engine, req));
    }
    floor
}

#[cfg(test)]
mod tests {
    use hms_types::GpuConfig;

    use crate::predictor::Predictor;
    use crate::profile::profile_sample;
    use crate::search::{SearchRequest, SearchStrategy};

    fn setup() -> (Predictor, crate::profile::Profile, Vec<hms_types::ArrayDef>) {
        let cfg = GpuConfig::test_small();
        let kt = hms_kernels::by_name("vecadd", hms_kernels::Scale::Test).unwrap();
        let profile = profile_sample(&kt, &kt.default_placement(), &cfg).unwrap();
        (Predictor::new(cfg), profile, kt.arrays)
    }

    fn all_strategies() -> [SearchStrategy; 3] {
        [
            SearchStrategy::Beam { width: 4 },
            SearchStrategy::SuccessiveHalving,
            SearchStrategy::LocalSearch { seed: 7 },
        ]
    }

    #[test]
    fn every_strategy_respects_the_sandwich_bound() {
        let (predictor, profile, arrays) = setup();
        let base = profile.trace.placement.clone();
        let exact = SearchRequest::new(&arrays, &base)
            .run(&predictor, &profile)
            .unwrap();
        let optimum = exact.best().unwrap().predicted_cycles;
        for strategy in all_strategies() {
            let out = SearchRequest::new(&arrays, &base)
                .strategy(strategy)
                .run(&predictor, &profile)
                .unwrap();
            let best = out.best().expect("non-empty").predicted_cycles;
            let gap = out.stats.gap_upper_bound;
            assert!(gap >= 0.0 && gap.is_finite(), "{strategy:?}: gap {gap}");
            assert!(
                best >= optimum,
                "{strategy:?}: best {best} beats the exhaustive optimum {optimum}"
            );
            assert!(
                best <= optimum * (1.0 + gap) + 1e-6,
                "{strategy:?}: best {best} outside optimum {optimum} x (1 + {gap})"
            );
            assert_eq!(out.stats.strategy, strategy.name());
            assert!(out.stats.anytime());
            assert!(out.stats.candidates_visited > 0);
        }
    }

    #[test]
    fn wide_beam_is_exhaustive_with_zero_gap() {
        let (predictor, profile, arrays) = setup();
        let base = profile.trace.placement.clone();
        let exact = SearchRequest::new(&arrays, &base)
            .run(&predictor, &profile)
            .unwrap();
        // A beam wider than the whole space never drops a prefix: the
        // best must be the true optimum and the gap exactly 0.
        let out = SearchRequest::new(&arrays, &base)
            .strategy(SearchStrategy::Beam { width: 4096 })
            .run(&predictor, &profile)
            .unwrap();
        assert_eq!(out.stats.gap_upper_bound, 0.0);
        assert_eq!(
            out.best().unwrap().predicted_cycles.to_bits(),
            exact.best().unwrap().predicted_cycles.to_bits()
        );
    }

    #[test]
    fn local_search_is_bit_identical_across_worker_counts() {
        let (predictor, profile, arrays) = setup();
        let base = profile.trace.placement.clone();
        let runs: Vec<_> = [1usize, 2, 8]
            .iter()
            .map(|&threads| {
                SearchRequest::new(&arrays, &base)
                    .strategy(SearchStrategy::LocalSearch { seed: 99 })
                    .threads(threads)
                    .run(&predictor, &profile)
                    .unwrap()
            })
            .collect();
        for other in &runs[1..] {
            assert_eq!(runs[0].ranked.len(), other.ranked.len());
            for (a, b) in runs[0].ranked.iter().zip(&other.ranked) {
                assert_eq!(a.placement, b.placement);
                assert_eq!(a.predicted_cycles.to_bits(), b.predicted_cycles.to_bits());
            }
            assert_eq!(
                runs[0].stats.gap_upper_bound.to_bits(),
                other.stats.gap_upper_bound.to_bits()
            );
        }
        // And a different seed is a different (but still valid) run.
        let reseeded = SearchRequest::new(&arrays, &base)
            .strategy(SearchStrategy::LocalSearch { seed: 100 })
            .run(&predictor, &profile)
            .unwrap();
        assert!(!reseeded.ranked.is_empty());
    }

    #[test]
    fn expired_deadline_cuts_every_strategy_without_panicking() {
        // Regression: a deadline landing mid-rung used to slice past the
        // evaluated prefix in successive halving.
        let cfg = GpuConfig::test_small();
        let kt = hms_kernels::by_name("wide4", hms_kernels::Scale::Test).unwrap();
        let profile = profile_sample(&kt, &kt.default_placement(), &cfg).unwrap();
        let predictor = Predictor::new(cfg);
        let base = profile.trace.placement.clone();
        for strategy in all_strategies() {
            let out = SearchRequest::new(&kt.arrays, &base)
                .strategy(strategy)
                .deadline(Some(std::time::Instant::now()))
                .run(&predictor, &profile)
                .unwrap();
            // At least one batch is always evaluated, and the gap stays
            // a sound finite bound even on the truncated run.
            assert!(!out.ranked.is_empty(), "{strategy:?}: empty ranking");
            assert!(
                out.stats.gap_upper_bound >= 0.0 && out.stats.gap_upper_bound.is_finite(),
                "{strategy:?}: bad gap {}",
                out.stats.gap_upper_bound
            );
        }
    }

    #[test]
    fn strategy_parse_accepts_both_spellings_and_rejects_bad_knobs() {
        assert_eq!(
            SearchStrategy::parse("beam", Some(3), None).unwrap(),
            SearchStrategy::Beam { width: 3 }
        );
        assert_eq!(
            SearchStrategy::parse("beam", None, None).unwrap(),
            SearchStrategy::Beam {
                width: SearchStrategy::DEFAULT_BEAM_WIDTH
            }
        );
        assert_eq!(
            SearchStrategy::parse("halving", None, None).unwrap(),
            SearchStrategy::SuccessiveHalving
        );
        assert_eq!(
            SearchStrategy::parse("successive_halving", None, None).unwrap(),
            SearchStrategy::SuccessiveHalving
        );
        assert_eq!(
            SearchStrategy::parse("local", None, Some(5)).unwrap(),
            SearchStrategy::LocalSearch { seed: 5 }
        );
        assert_eq!(
            SearchStrategy::parse("bnb", None, None).unwrap(),
            SearchStrategy::BranchAndBound
        );
        assert!(SearchStrategy::parse("warp_drive", None, None).is_err());
        assert!(SearchStrategy::parse("beam", Some(0), None).is_err());
        assert!(SearchStrategy::parse("local", Some(4), None).is_err());
        assert!(SearchStrategy::parse("beam", None, Some(1)).is_err());
        assert!(SearchStrategy::parse("exhaustive", Some(4), None).is_err());
    }
}
