//! Sensitivity analysis: how robust is a placement decision to the
//! model's calibrated constants?
//!
//! The paper's model inherits measured constants (row-buffer latencies,
//! the L2 hit latency, the warp ILP). A placement recommendation is only
//! trustworthy if it survives perturbation of those constants — this
//! module sweeps them and reports whether the *ranking* of candidate
//! placements changes, which is the model's actual decision output.

use hms_types::{GpuConfig, HmsError, PlacementMap};

use crate::predictor::Predictor;
use crate::profile::Profile;

/// A single knob the sweep can perturb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Knob {
    /// Scale all three row-buffer service latencies.
    DramLatency,
    /// Scale the L2 hit latency (and with it every off-chip hit path).
    L2HitLatency,
    /// Scale the shared-memory latency.
    SharedLatency,
    /// Scale the assumed warp-local ILP of Eq. 14.
    WarpIlp,
}

impl Knob {
    pub const ALL: [Knob; 4] = [
        Knob::DramLatency,
        Knob::L2HitLatency,
        Knob::SharedLatency,
        Knob::WarpIlp,
    ];

    /// Apply a multiplicative factor to this knob in a copied config.
    pub fn apply(self, cfg: &GpuConfig, factor: f64) -> GpuConfig {
        let mut c = cfg.clone();
        let scale = |x: u64| ((x as f64) * factor).round().max(1.0) as u64;
        match self {
            Knob::DramLatency => {
                c.dram.hit_cycles = scale(c.dram.hit_cycles);
                c.dram.miss_cycles = scale(c.dram.miss_cycles);
                c.dram.conflict_cycles = scale(c.dram.conflict_cycles);
            }
            Knob::L2HitLatency => c.l2_hit_lat = scale(c.l2_hit_lat),
            Knob::SharedLatency => c.shared_lat = scale(c.shared_lat),
            Knob::WarpIlp => c.warp_ilp = (c.warp_ilp * factor).max(0.5),
        }
        c
    }
}

/// Result of one sensitivity sweep.
#[derive(Debug, Clone)]
pub struct SensitivityReport {
    pub knob: Knob,
    /// `(factor, predicted cycles per candidate)` per sweep point.
    pub points: Vec<(f64, Vec<f64>)>,
    /// Whether the argmin candidate stayed the same across the sweep.
    pub winner_stable: bool,
}

/// Sweep `knob` over `factors` and re-predict every candidate placement.
///
/// The predictor's trained overlap model and the profile are held fixed;
/// only the analytic constants move — isolating the decision's
/// sensitivity to calibration error.
pub fn sweep(
    predictor: &Predictor,
    profile: &Profile,
    candidates: &[PlacementMap],
    knob: Knob,
    factors: &[f64],
) -> Result<SensitivityReport, HmsError> {
    if candidates.is_empty() {
        return Err(HmsError::InvalidInput("no candidate placements".into()));
    }
    let mut points = Vec::with_capacity(factors.len());
    let mut winners = Vec::new();
    for &f in factors {
        let cfg = knob.apply(&predictor.cfg, f);
        let p = Predictor {
            cfg,
            options: predictor.options,
            overlap: predictor.overlap.clone(),
        };
        let mut preds = Vec::with_capacity(candidates.len());
        for pm in candidates {
            preds.push(p.predict(profile, pm)?.cycles);
        }
        let winner = preds
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty");
        winners.push(winner);
        points.push((f, preds));
    }
    let winner_stable = winners.windows(2).all(|w| w[0] == w[1]);
    Ok(SensitivityReport {
        knob,
        points,
        winner_stable,
    })
}

/// Convenience: sweep every knob over +-`spread` (e.g. 0.25 for +-25%)
/// and report which knobs can flip the recommended placement.
pub fn stability(
    predictor: &Predictor,
    profile: &Profile,
    candidates: &[PlacementMap],
    spread: f64,
) -> Result<Vec<SensitivityReport>, HmsError> {
    let factors = [1.0 - spread, 1.0, 1.0 + spread];
    Knob::ALL
        .iter()
        .map(|&k| sweep(predictor, profile, candidates, k, &factors))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile_sample;
    use hms_kernels::{vecadd, Scale};
    use hms_types::{ArrayId, MemorySpace};

    fn setup() -> (Predictor, Profile, Vec<PlacementMap>) {
        let cfg = GpuConfig::test_small();
        let kt = vecadd::build(Scale::Test);
        let sample = kt.default_placement();
        let profile = profile_sample(&kt, &sample, &cfg).unwrap();
        let candidates = vec![
            sample.clone(),
            sample.with(ArrayId(0), MemorySpace::Texture1D),
            sample.with(ArrayId(0), MemorySpace::Constant),
        ];
        (Predictor::new(cfg), profile, candidates)
    }

    #[test]
    fn knobs_scale_the_right_fields() {
        let cfg = GpuConfig::tesla_k80();
        let c = Knob::DramLatency.apply(&cfg, 2.0);
        assert_eq!(c.dram.hit_cycles, cfg.dram.hit_cycles * 2);
        assert_eq!(c.l2_hit_lat, cfg.l2_hit_lat);
        let c = Knob::L2HitLatency.apply(&cfg, 0.5);
        assert_eq!(c.l2_hit_lat, cfg.l2_hit_lat / 2);
        let c = Knob::WarpIlp.apply(&cfg, 2.0);
        assert!((c.warp_ilp - cfg.warp_ilp * 2.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_produces_monotone_dram_response() {
        let (p, profile, candidates) = setup();
        let r = sweep(
            &p,
            &profile,
            &candidates,
            Knob::DramLatency,
            &[0.5, 1.0, 2.0],
        )
        .unwrap();
        assert_eq!(r.points.len(), 3);
        // Higher DRAM latency must not *decrease* the prediction for the
        // all-global placement (index 0).
        let series: Vec<f64> = r.points.iter().map(|(_, v)| v[0]).collect();
        assert!(series[0] <= series[1] + 1e-9);
        assert!(series[1] <= series[2] + 1e-9);
    }

    #[test]
    fn stability_covers_every_knob() {
        let (p, profile, candidates) = setup();
        let reports = stability(&p, &profile, &candidates, 0.25).unwrap();
        assert_eq!(reports.len(), Knob::ALL.len());
        for r in &reports {
            assert_eq!(r.points.len(), 3);
            for (_, preds) in &r.points {
                assert_eq!(preds.len(), candidates.len());
                assert!(preds.iter().all(|x| x.is_finite() && *x > 0.0));
            }
        }
    }

    #[test]
    fn empty_candidates_rejected() {
        let (p, profile, _) = setup();
        assert!(sweep(&p, &profile, &[], Knob::WarpIlp, &[1.0]).is_err());
    }
}
