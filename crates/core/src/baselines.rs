//! The comparison models of the paper's evaluation.
//!
//! * [`SimKimModel`] — a model in the style of Sim et al. [7] (itself
//!   built on Hong & Kim [6]): executed-instruction counts (no replays,
//!   no addressing-mode difference), a constant microbenchmark-measured
//!   DRAM latency, and the MWP/CWP formulation for the
//!   computation/memory overlap instead of a trained Eq. 11. This is the
//!   "[7]" line in Figure 5.
//! * [`PorpleModel`] — a latency-oriented model in the style of
//!   PORPLE [4]: it scores a placement by summing per-space memory
//!   latencies weighted by request counts, with no instruction modeling,
//!   no queuing, and no overlap term. "The model aims to rank
//!   performance of different data placements instead of predicting
//!   execution time" — the Figure 6 comparison.

use hms_trace::rewrite;
use hms_types::{GpuConfig, HmsError, PlacementMap};

use crate::analysis::{analyze, TraceAnalysis};
use crate::profile::Profile;
use crate::tcomp::effective_throughput;

/// A Sim-et-al.-style [7] predictor.
#[derive(Debug, Clone)]
pub struct SimKimModel {
    pub cfg: GpuConfig,
}

impl SimKimModel {
    pub fn new(cfg: GpuConfig) -> Self {
        SimKimModel { cfg }
    }

    /// Predict cycles for `target` from the sample `profile`.
    pub fn predict(&self, profile: &Profile, target: &PlacementMap) -> Result<f64, HmsError> {
        let trace = rewrite(&profile.trace, target, &self.cfg)?;
        let analysis = analyze(&trace, &self.cfg);
        Ok(self.predict_from_analysis(profile, &analysis))
    }

    pub fn predict_from_analysis(&self, profile: &Profile, analysis: &TraceAnalysis) -> f64 {
        let cfg = &self.cfg;
        let total_warps = analysis.total_warps.max(1) as f64;
        let active_sms = f64::from(analysis.active_sms.max(1));
        let n = analysis.warps_per_sm.max(1.0);

        // Executed instructions only — the sample's count, since [7]
        // does not model the issued-instruction difference between
        // placements.
        let inst_per_warp = profile.events.inst_executed as f64 / total_warps;
        let t_comp = inst_per_warp * total_warps / active_sms * effective_throughput(cfg, n);

        // Constant memory latency: one microbenchmark number for every
        // off-chip access (the assumption the paper's Section III-C
        // argues against).
        let mem_lat = cfg.l2_hit_lat as f64
            + (cfg.dram.miss_cycles + cfg.dram.burst_cycles) as f64
                * if analysis.l2_transactions > 0 {
                    analysis.l2_misses as f64 / analysis.l2_transactions as f64
                } else {
                    0.0
                };
        let mem_instrs_per_warp = analysis.mem_instrs as f64 / total_warps;
        let mwp = (mem_lat / cfg.dram.burst_cycles as f64).max(1.0).min(n);
        let t_mem = mem_instrs_per_warp * total_warps / active_sms / mwp.max(1.0) * mem_lat;

        // Hong & Kim overlap: if CWP >= MWP the kernel is memory bound
        // and computation hides under memory; otherwise compute bound.
        let comp_per_warp = inst_per_warp * effective_throughput(cfg, n);
        let mem_per_warp = mem_instrs_per_warp * mem_lat;
        let cwp = if comp_per_warp > 0.0 {
            ((mem_per_warp + comp_per_warp) / comp_per_warp).min(n)
        } else {
            n
        };
        let overlap = if cwp >= mwp {
            // Memory bound: most computation overlaps with memory.
            t_comp * (1.0 - 1.0 / mwp.max(1.0))
        } else {
            // Compute bound: memory hides under computation.
            t_mem * (1.0 - 1.0 / cwp.max(1.0))
        };
        (t_comp + t_mem - overlap).max(1.0)
    }
}

/// A PORPLE-style latency-oriented scorer.
#[derive(Debug, Clone)]
pub struct PorpleModel {
    pub cfg: GpuConfig,
}

impl PorpleModel {
    pub fn new(cfg: GpuConfig) -> Self {
        PorpleModel { cfg }
    }

    /// Score `target` (lower = predicted faster). The score is a pure
    /// memory-latency sum: per-space requests x per-space nominal
    /// latency, with cache hits estimated from the trace analysis. No
    /// occupancy effects, no staging costs, no instruction modeling —
    /// the blind spots that make it misrank NN_S in Figure 6.
    pub fn score(&self, profile: &Profile, target: &PlacementMap) -> Result<f64, HmsError> {
        let trace = rewrite(&profile.trace, target, &self.cfg)?;
        // PORPLE reasons from the kernel-body access stream only: it has
        // no concept of the shared-memory staging copies, so the
        // analysis excludes them (one of its Figure 6 blind spots).
        let analysis = crate::analysis::analyze_with(
            &trace,
            &self.cfg,
            crate::analysis::AnalysisOptions {
                include_staging: false,
            },
        );
        Ok(self.score_from_analysis(&analysis))
    }

    pub fn score_from_analysis(&self, analysis: &TraceAnalysis) -> f64 {
        let cfg = &self.cfg;
        let dram = (cfg.dram.miss_cycles + cfg.dram.burst_cycles) as f64;
        let l2 = cfg.l2_hit_lat as f64;
        // Off-chip paths: per-space request counts weighted by hit path
        // latency + miss path latency.
        let global = analysis.global_transactions as f64 * l2;
        let tex =
            analysis.tex_requests as f64 * cfg.tex_hit_lat as f64 + analysis.tex_misses as f64 * l2;
        let konst = analysis.const_requests as f64 * cfg.const_hit_lat as f64
            + analysis.const_misses as f64 * l2;
        let shared = analysis.shared_requests as f64 * cfg.shared_lat as f64;
        let dram_part = analysis.dram.len() as f64 * dram;
        global + tex + konst + shared + dram_part
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile_sample;
    use hms_kernels::{neuralnet, vecadd, Scale};
    use hms_types::ArrayId;
    use hms_types::MemorySpace;

    fn cfg() -> GpuConfig {
        GpuConfig::test_small()
    }

    #[test]
    fn simkim_predicts_positive_time() {
        let cfg = cfg();
        let kt = vecadd::build(Scale::Test);
        let pm = kt.default_placement();
        let profile = profile_sample(&kt, &pm, &cfg).unwrap();
        let pred = SimKimModel::new(cfg).predict(&profile, &pm).unwrap();
        assert!(pred > 0.0);
    }

    #[test]
    fn simkim_is_blind_to_addressing_mode_changes() {
        // [7] uses the sample's executed-instruction count, so moving an
        // array to texture memory changes its T_comp not at all — the
        // deficiency our model fixes.
        let cfg = cfg();
        let kt = vecadd::build(Scale::Test);
        let pm = kt.default_placement();
        let profile = profile_sample(&kt, &pm, &cfg).unwrap();
        let model = SimKimModel::new(cfg.clone());
        let t = pm
            .with(ArrayId(0), MemorySpace::Texture1D)
            .with(ArrayId(1), MemorySpace::Texture1D);
        let a_g = analyze(&profile.trace, &cfg);
        let a_t = analyze(&rewrite(&profile.trace, &t, &cfg).unwrap(), &cfg);
        // Memory side may differ, but the instruction side is fixed:
        // verify by comparing compute-only inputs.
        assert!(a_t.executed < a_g.executed);
        let _ = model; // the executed delta above is what SimKim ignores
    }

    #[test]
    fn porple_scores_rank_obvious_cases() {
        // For uniform broadcast reads, constant placement scores better
        // than global under PORPLE (it sees the cheap constant path).
        let cfg = cfg();
        let kt = hms_kernels::convolution::build_rows(Scale::Test);
        let pm = kt.default_placement();
        let profile = profile_sample(&kt, &pm, &cfg).unwrap();
        let model = PorpleModel::new(cfg);
        let g = model.score(&profile, &pm).unwrap();
        let c = model
            .score(&profile, &pm.with(ArrayId(1), MemorySpace::Constant))
            .unwrap();
        assert!(c < g, "constant {c} should score below global {g}");
    }

    #[test]
    fn porple_ignores_shared_staging_cost() {
        // PORPLE's blind spot: a shared placement of the full weights
        // matrix scores *well* because the per-access latency is small,
        // even though staging + occupancy collapse make it slow on the
        // machine. This is the NN_S failure of Figure 6.
        let cfg = cfg();
        let kt = neuralnet::build(Scale::Test);
        let pm = kt.default_placement();
        let profile = profile_sample(&kt, &pm, &cfg).unwrap();
        let model = PorpleModel::new(cfg);
        let g = model.score(&profile, &pm).unwrap();
        let s = model
            .score(&profile, &pm.with(ArrayId(0), MemorySpace::Shared))
            .unwrap();
        assert!(s < g, "PORPLE must (wrongly) prefer shared here");
    }
}
