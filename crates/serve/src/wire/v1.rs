//! Version-1 wire format: the explicit request/response structs behind
//! `/v1/predict`, `/v1/advise`, and `/v1/search` — one place where the
//! field set, the parse rules, and the byte layout live, shared
//! verbatim by the HTTP server and the CLI's `--json` mode.
//!
//! Versioning discipline: optional members are *omitted* when absent,
//! never emitted as `null`, so adding one keeps every pre-existing
//! exchange byte-identical. The [`PredictRequest::config`] /
//! [`RankRequest::config`] tenant selector follows the same rule as the
//! `"partial"` response member: a request without it parses (and a
//! response never echoes it), so clients written against the
//! single-config server keep working unchanged against a multi-tenant
//! one.

use hms_core::EngineStats;
use hms_kernels::Scale;
use hms_types::MemorySpace;

use crate::api::ApiError;
use crate::wire::Json;

fn obj_members<'j>(v: &'j Json, what: &str) -> Result<&'j [(String, Json)], ApiError> {
    v.as_obj()
        .ok_or_else(|| ApiError::BadRequest(format!("{what} must be a JSON object")))
}

fn field_str(v: &Json, key: &str) -> Result<String, ApiError> {
    v.get(key)
        .ok_or_else(|| ApiError::BadRequest(format!("missing field `{key}`")))?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| ApiError::BadRequest(format!("field `{key}` must be a string")))
}

fn opt_str(v: &Json, key: &str) -> Result<Option<String>, ApiError> {
    match v.get(key) {
        None => Ok(None),
        Some(x) => x
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| ApiError::BadRequest(format!("field `{key}` must be a string"))),
    }
}

fn opt_scale(v: &Json) -> Result<Scale, ApiError> {
    match v.get("scale") {
        None => Ok(Scale::Full),
        Some(s) => {
            let s = s
                .as_str()
                .ok_or_else(|| ApiError::BadRequest("field `scale` must be a string".into()))?;
            Scale::parse(s)
                .ok_or_else(|| ApiError::BadRequest(format!("unknown scale `{s}` (test|full)")))
        }
    }
}

fn opt_usize(v: &Json, key: &str, default: usize) -> Result<usize, ApiError> {
    match v.get(key) {
        None => Ok(default),
        Some(x) => x.as_usize().ok_or_else(|| {
            ApiError::BadRequest(format!("field `{key}` must be a non-negative integer"))
        }),
    }
}

/// Optional non-negative integer with no default — absent stays `None`.
fn opt_usize_maybe(v: &Json, key: &str) -> Result<Option<usize>, ApiError> {
    match v.get(key) {
        None => Ok(None),
        Some(x) => x.as_usize().map(Some).ok_or_else(|| {
            ApiError::BadRequest(format!("field `{key}` must be a non-negative integer"))
        }),
    }
}

/// Optional `u64` (JSON numbers are f64, so values are exact up to
/// 2^53 — plenty for a search seed).
fn opt_u64(v: &Json, key: &str) -> Result<Option<u64>, ApiError> {
    match v.get(key) {
        None => Ok(None),
        Some(x) => x.as_usize().map(|n| Some(n as u64)).ok_or_else(|| {
            ApiError::BadRequest(format!("field `{key}` must be a non-negative integer"))
        }),
    }
}

fn opt_bool(v: &Json, key: &str) -> Result<bool, ApiError> {
    match v.get(key) {
        None => Ok(false),
        Some(x) => x
            .as_bool()
            .ok_or_else(|| ApiError::BadRequest(format!("field `{key}` must be a boolean"))),
    }
}

fn reject_unknown(v: &Json, allowed: &[&str], what: &str) -> Result<(), ApiError> {
    for (k, _) in obj_members(v, what)? {
        if !allowed.contains(&k.as_str()) {
            return Err(ApiError::BadRequest(format!(
                "unknown field `{k}` in {what} (allowed: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

fn parse_space(s: &str) -> Result<MemorySpace, ApiError> {
    MemorySpace::from_short(s)
        .ok_or_else(|| ApiError::BadRequest(format!("unknown space `{s}` (use G, T, 2T, C, or S)")))
}

/// `POST /v1/predict` — one target placement of one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictRequest {
    pub kernel: String,
    pub scale: Scale,
    /// `array name -> space` moves applied on the default placement.
    pub moves: Vec<(String, MemorySpace)>,
    /// Named GPU configuration (tenant) to advise against; `None`
    /// selects the server's default tenant.
    pub config: Option<String>,
}

impl PredictRequest {
    /// Parse a predict request body. Moves come either as a `"moves"`
    /// array of `{"array": .., "space": ..}` objects or a `"placement"`
    /// object of `name -> space` pairs; both use the paper's short space
    /// notation (`G`, `T`, `2T`, `C`, `S`).
    pub fn from_json(v: &Json) -> Result<PredictRequest, ApiError> {
        reject_unknown(
            v,
            &["kernel", "scale", "moves", "placement", "config"],
            "predict request",
        )?;
        let kernel = field_str(v, "kernel")?;
        let scale = opt_scale(v)?;
        let config = opt_str(v, "config")?;
        let mut moves = Vec::new();
        if let Some(list) = v.get("moves") {
            let list = list
                .as_arr()
                .ok_or_else(|| ApiError::BadRequest("field `moves` must be an array".into()))?;
            for m in list {
                reject_unknown(m, &["array", "space"], "move")?;
                moves.push((
                    field_str(m, "array")?,
                    parse_space(&field_str(m, "space")?)?,
                ));
            }
        }
        if let Some(pm) = v.get("placement") {
            for (name, space) in obj_members(pm, "field `placement`")? {
                let space = space.as_str().ok_or_else(|| {
                    ApiError::BadRequest(format!("placement of `{name}` must be a string"))
                })?;
                moves.push((name.clone(), parse_space(space)?));
            }
        }
        if moves.is_empty() {
            return Err(ApiError::BadRequest(
                "predict needs `moves` or `placement`".into(),
            ));
        }
        Ok(PredictRequest {
            kernel,
            scale,
            moves,
            config,
        })
    }

    /// The request as wire JSON (what a client would send). The
    /// `config` member is emitted only when present — absent keeps the
    /// pre-tenant byte layout.
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("kernel".into(), Json::str(&self.kernel)),
            ("scale".into(), Json::str(self.scale.as_str())),
        ];
        if let Some(cfg) = &self.config {
            members.push(("config".into(), Json::str(cfg)));
        }
        members.push((
            "moves".into(),
            Json::Arr(
                self.moves
                    .iter()
                    .map(|(name, space)| {
                        Json::Obj(vec![
                            ("array".into(), Json::str(name)),
                            ("space".into(), Json::str(space.short())),
                        ])
                    })
                    .collect(),
            ),
        ));
        Json::Obj(members)
    }
}

/// `POST /v1/advise` and `POST /v1/search` — rank the read-only
/// placement space of one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct RankRequest {
    pub kernel: String,
    pub scale: Scale,
    pub top: usize,
    /// Branch-and-bound instead of exhaustive (mirrors `hms search
    /// --prune`). Always `false` for `/v1/advise`.
    pub prune: bool,
    /// Worker threads for candidate evaluation (0 = all cores). Does not
    /// affect the response bytes — evaluation is thread-deterministic.
    pub threads: usize,
    /// Named GPU configuration (tenant); `None` = default tenant.
    pub config: Option<String>,
    /// Explicit strategy spelling (`beam`, `halving`, `local`, `bnb`,
    /// `exhaustive`); `None` falls back to the `prune` flag. `/v1/search`
    /// only. Mutually exclusive with `prune: true`.
    pub strategy: Option<String>,
    /// Local-search seed; only legal with `"strategy": "local"`.
    pub seed: Option<u64>,
    /// Beam width; only legal with `"strategy": "beam"`.
    pub beam: Option<usize>,
}

impl RankRequest {
    /// Parse an advise/search request body. `allow_search_knobs` gates
    /// the `prune`, `threads`, `strategy`, `seed`, and `beam` fields
    /// (`/v1/advise` rejects them, like `hms advise` has no `--prune`).
    pub fn from_json(v: &Json, allow_search_knobs: bool) -> Result<RankRequest, ApiError> {
        let allowed: &[&str] = if allow_search_knobs {
            &[
                "kernel", "scale", "top", "prune", "threads", "config", "strategy", "seed", "beam",
            ]
        } else {
            &["kernel", "scale", "top", "config"]
        };
        reject_unknown(v, allowed, "rank request")?;
        let req = RankRequest {
            kernel: field_str(v, "kernel")?,
            scale: opt_scale(v)?,
            top: opt_usize(v, "top", 5)?,
            prune: allow_search_knobs && opt_bool(v, "prune")?,
            threads: if allow_search_knobs {
                opt_usize(v, "threads", 1)?
            } else {
                1
            },
            config: opt_str(v, "config")?,
            strategy: if allow_search_knobs {
                opt_str(v, "strategy")?
            } else {
                None
            },
            seed: if allow_search_knobs {
                opt_u64(v, "seed")?
            } else {
                None
            },
            beam: if allow_search_knobs {
                opt_usize_maybe(v, "beam")?
            } else {
                None
            },
        };
        // Fail structurally-contradictory requests at the parse edge so
        // they can never reach the cache key.
        req.resolve_strategy()?;
        Ok(req)
    }

    /// The [`hms_core::SearchStrategy`] this request asks for.
    /// `strategy` (with its knobs) wins; otherwise `prune` picks
    /// branch-and-bound over exhaustive, exactly as before the anytime
    /// strategies existed.
    pub fn resolve_strategy(&self) -> Result<hms_core::SearchStrategy, ApiError> {
        use hms_core::SearchStrategy;
        match &self.strategy {
            Some(name) => {
                if self.prune {
                    return Err(ApiError::BadRequest(
                        "`prune` and `strategy` are mutually exclusive".into(),
                    ));
                }
                SearchStrategy::parse(name, self.beam, self.seed).map_err(ApiError::BadRequest)
            }
            None if self.beam.is_some() => Err(ApiError::BadRequest(
                "field `beam` requires `\"strategy\": \"beam\"`".into(),
            )),
            None if self.seed.is_some() => Err(ApiError::BadRequest(
                "field `seed` requires `\"strategy\": \"local\"`".into(),
            )),
            None if self.prune => Ok(SearchStrategy::BranchAndBound),
            None => Ok(SearchStrategy::Exhaustive),
        }
    }
}

/// One placement spelled the way every response spells it: `array name
/// -> short space`, in array-id order.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementV1(pub Vec<(String, MemorySpace)>);

impl PlacementV1 {
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.0
                .iter()
                .map(|(name, space)| (name.clone(), Json::str(space.short())))
                .collect(),
        )
    }
}

/// `POST /v1/predict` response body.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictResponse {
    pub kernel: String,
    pub scale: Scale,
    pub placement: PlacementV1,
    pub predicted_cycles: f64,
    pub t_comp: f64,
    pub t_mem: f64,
    pub t_overlap: f64,
    pub sample_measured_cycles: f64,
}

impl PredictResponse {
    /// The exact response byte layout (member order is the wire
    /// contract; [`Json::encode_pretty`] is deterministic).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("kernel".into(), Json::str(&self.kernel)),
            ("scale".into(), Json::str(self.scale.as_str())),
            ("placement".into(), self.placement.to_json()),
            ("predicted_cycles".into(), Json::Num(self.predicted_cycles)),
            ("t_comp".into(), Json::Num(self.t_comp)),
            ("t_mem".into(), Json::Num(self.t_mem)),
            ("t_overlap".into(), Json::Num(self.t_overlap)),
            (
                "sample_measured_cycles".into(),
                Json::Num(self.sample_measured_cycles),
            ),
        ])
    }
}

/// One entry of a ranked response.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedEntry {
    pub placement: PlacementV1,
    pub predicted_cycles: f64,
}

/// `POST /v1/advise` / `POST /v1/search` response body.
#[derive(Debug, Clone, PartialEq)]
pub struct RankResponse {
    pub kernel: String,
    pub scale: Scale,
    /// [`SearchStrategy::name`](hms_core::SearchStrategy::name):
    /// `"exhaustive"`, `"branch_and_bound"`, `"beam"`,
    /// `"successive_halving"`, or `"local_search"`.
    pub strategy: &'static str,
    /// Candidates actually ranked (before the `top` cut).
    pub ranked_total: usize,
    pub ranked: Vec<RankedEntry>,
    /// The search hit its deadline and this is best-so-far. Omitted
    /// from the wire when `false` — finished responses are
    /// byte-identical whether or not a deadline was set.
    pub partial: bool,
    /// `Some(gap_upper_bound)` when the degradation ladder downgraded
    /// the requested strategy: the wire gets `"degraded": true` plus the
    /// reported optimality-gap upper bound of the strategy actually run
    /// (whose name the `strategy` member already carries). Omitted
    /// entirely when `None`, keeping normal responses byte-identical.
    pub degraded: Option<f64>,
    /// The engine's deterministic counters (`/v1/search` only).
    pub stats: Option<EngineStats>,
}

impl RankResponse {
    pub fn to_json(&self) -> Json {
        let ranked: Vec<Json> = self
            .ranked
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("placement".into(), r.placement.to_json()),
                    ("predicted_cycles".into(), Json::Num(r.predicted_cycles)),
                ])
            })
            .collect();
        let mut members = vec![
            ("kernel".into(), Json::str(&self.kernel)),
            ("scale".into(), Json::str(self.scale.as_str())),
            ("strategy".into(), Json::str(self.strategy)),
            ("ranked_total".into(), Json::num(self.ranked_total as u32)),
            ("ranked".into(), Json::Arr(ranked)),
        ];
        if self.partial {
            members.push(("partial".into(), Json::Bool(true)));
        }
        if let Some(gap) = self.degraded {
            members.push(("degraded".into(), Json::Bool(true)));
            members.push(("gap_upper_bound".into(), Json::Num(gap)));
        }
        if let Some(s) = &self.stats {
            members.push((
                "stats".into(),
                Json::Obj({
                    let mut stats = vec![
                        (
                            "candidates_enumerated".into(),
                            Json::Num(s.candidates_enumerated as f64),
                        ),
                        (
                            "candidates_evaluated".into(),
                            Json::Num(s.candidates_evaluated as f64),
                        ),
                        (
                            "candidates_pruned".into(),
                            Json::Num(s.candidates_pruned as f64),
                        ),
                        (
                            "skeletons_built".into(),
                            Json::Num(s.skeletons_built as f64),
                        ),
                        ("full_rewrites".into(), Json::Num(s.full_rewrites as f64)),
                        (
                            "delta_cache_hits".into(),
                            Json::Num(s.delta_cache_hits as f64),
                        ),
                        (
                            "exact_fallbacks".into(),
                            Json::Num(s.exact_fallbacks as f64),
                        ),
                        ("rewrite_reduction".into(), Json::Num(s.rewrite_reduction())),
                    ];
                    // Anytime-only members append after the legacy block so
                    // exact-strategy responses stay byte-identical.
                    if s.anytime() {
                        stats.push((
                            "candidates_visited".into(),
                            Json::Num(s.candidates_visited as f64),
                        ));
                        stats.push(("gap_upper_bound".into(), Json::Num(s.gap_upper_bound)));
                    }
                    stats
                }),
            ));
        }
        Json::Obj(members)
    }
}

/// The one error body shape every non-200 JSON response uses.
pub fn error_body(msg: &str) -> String {
    Json::Obj(vec![("error".into(), Json::str(msg))]).encode_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::decode;

    #[test]
    fn absent_config_keeps_request_byte_identity() {
        // The same request with and without the member must differ
        // *only* by it — and absence must round-trip to absence.
        let without =
            decode(r#"{"kernel":"spmv","scale":"test","moves":[{"array":"d_vec","space":"T"}]}"#)
                .unwrap();
        let q = PredictRequest::from_json(&without).unwrap();
        assert_eq!(q.config, None);
        let encoded = q.to_json().encode_pretty();
        assert!(
            !encoded.contains("config"),
            "absent member leaked: {encoded}"
        );

        let with = decode(
            r#"{"kernel":"spmv","scale":"test","config":"k80","moves":[{"array":"d_vec","space":"T"}]}"#,
        )
        .unwrap();
        let q2 = PredictRequest::from_json(&with).unwrap();
        assert_eq!(q2.config.as_deref(), Some("k80"));
        assert_eq!(q2.kernel, q.kernel);
        assert_eq!(q2.moves, q.moves);
        assert!(q2.to_json().encode_pretty().contains("\"config\": \"k80\""));
    }

    #[test]
    fn rank_request_accepts_config_on_both_endpoints() {
        let v = decode(r#"{"kernel":"vecadd","config":"c2050"}"#).unwrap();
        assert_eq!(
            RankRequest::from_json(&v, false).unwrap().config.as_deref(),
            Some("c2050")
        );
        assert_eq!(
            RankRequest::from_json(&v, true).unwrap().config.as_deref(),
            Some("c2050")
        );
        // Still typed: a non-string config is rejected.
        let bad = decode(r#"{"kernel":"vecadd","config":7}"#).unwrap();
        assert!(RankRequest::from_json(&bad, false).is_err());
    }

    #[test]
    fn predict_response_member_order_is_pinned() {
        let resp = PredictResponse {
            kernel: "vecadd".into(),
            scale: Scale::Test,
            placement: PlacementV1(vec![("a".into(), MemorySpace::Texture1D)]),
            predicted_cycles: 100.0,
            t_comp: 40.0,
            t_mem: 80.0,
            t_overlap: 20.0,
            sample_measured_cycles: 123.0,
        };
        let text = resp.to_json().encode_pretty();
        let order = [
            "kernel",
            "scale",
            "placement",
            "predicted_cycles",
            "t_comp",
            "t_mem",
            "t_overlap",
            "sample_measured_cycles",
        ];
        let mut last = 0;
        for key in order {
            let at = text.find(&format!("\"{key}\"")).expect(key);
            assert!(at > last, "member `{key}` out of order");
            last = at;
        }
    }

    #[test]
    fn rank_response_omits_partial_and_stats_when_absent() {
        let resp = RankResponse {
            kernel: "vecadd".into(),
            scale: Scale::Test,
            strategy: "exhaustive",
            ranked_total: 2,
            ranked: vec![RankedEntry {
                placement: PlacementV1(vec![("a".into(), MemorySpace::Global)]),
                predicted_cycles: 10.0,
            }],
            partial: false,
            degraded: None,
            stats: None,
        };
        let text = resp.to_json().encode_pretty();
        assert!(!text.contains("partial"));
        assert!(!text.contains("degraded"));
        assert!(!text.contains("stats"));
        let partial = RankResponse {
            partial: true,
            stats: Some(EngineStats::default()),
            ..resp
        };
        let text = partial.to_json().encode_pretty();
        assert!(text.contains("\"partial\": true"));
        assert!(text.contains("\"rewrite_reduction\""));
        // Exact strategies never emit the anytime-only stats members.
        assert!(!text.contains("candidates_visited"));
        assert!(!text.contains("gap_upper_bound"));
    }

    #[test]
    fn degraded_member_appends_after_partial_with_its_gap() {
        let resp = RankResponse {
            kernel: "vecadd".into(),
            scale: Scale::Test,
            strategy: "beam",
            ranked_total: 1,
            ranked: vec![],
            partial: true,
            degraded: Some(0.125),
            stats: None,
        };
        let text = resp.to_json().encode_pretty();
        let partial = text.find("\"partial\"").unwrap();
        let degraded = text.find("\"degraded\": true").unwrap();
        let gap = text.find("\"gap_upper_bound\": 0.125").unwrap();
        assert!(partial < degraded && degraded < gap, "order broken: {text}");
        // Absent means absent — no null, no false.
        let normal = RankResponse {
            partial: false,
            degraded: None,
            ..resp
        };
        assert!(!normal.to_json().encode_pretty().contains("degraded"));
    }

    #[test]
    fn anytime_stats_members_append_after_the_legacy_block() {
        let stats = EngineStats {
            strategy: "beam",
            candidates_visited: 17,
            gap_upper_bound: 0.25,
            ..EngineStats::default()
        };
        assert!(stats.anytime());
        let resp = RankResponse {
            kernel: "wide8".into(),
            scale: Scale::Test,
            strategy: "beam",
            ranked_total: 1,
            ranked: vec![],
            partial: false,
            degraded: None,
            stats: Some(stats),
        };
        let text = resp.to_json().encode_pretty();
        let legacy = text.find("\"rewrite_reduction\"").unwrap();
        let visited = text.find("\"candidates_visited\"").unwrap();
        let gap = text.find("\"gap_upper_bound\"").unwrap();
        assert!(legacy < visited && visited < gap, "order broken: {text}");
    }

    #[test]
    fn search_strategy_fields_parse_and_resolve() {
        use hms_core::SearchStrategy;
        let v = decode(r#"{"kernel":"wide8","strategy":"beam","beam":4}"#).unwrap();
        let q = RankRequest::from_json(&v, true).unwrap();
        assert_eq!(
            q.resolve_strategy().unwrap(),
            SearchStrategy::Beam { width: 4 }
        );
        let v = decode(r#"{"kernel":"wide8","strategy":"local","seed":9}"#).unwrap();
        let q = RankRequest::from_json(&v, true).unwrap();
        assert_eq!(
            q.resolve_strategy().unwrap(),
            SearchStrategy::LocalSearch { seed: 9 }
        );
        // The legacy spellings keep resolving as before.
        let v = decode(r#"{"kernel":"wide8","prune":true}"#).unwrap();
        let q = RankRequest::from_json(&v, true).unwrap();
        assert_eq!(
            q.resolve_strategy().unwrap(),
            SearchStrategy::BranchAndBound
        );
        let v = decode(r#"{"kernel":"wide8"}"#).unwrap();
        let q = RankRequest::from_json(&v, true).unwrap();
        assert_eq!(q.resolve_strategy().unwrap(), SearchStrategy::Exhaustive);
    }

    #[test]
    fn contradictory_strategy_requests_fail_at_the_parse_edge() {
        for body in [
            // prune and strategy are mutually exclusive.
            r#"{"kernel":"wide8","prune":true,"strategy":"beam"}"#,
            // knobs without their strategy.
            r#"{"kernel":"wide8","beam":4}"#,
            r#"{"kernel":"wide8","seed":7}"#,
            // knobs on the wrong strategy.
            r#"{"kernel":"wide8","strategy":"local","beam":4}"#,
            r#"{"kernel":"wide8","strategy":"beam","seed":7}"#,
            // unknown strategy / zero width.
            r#"{"kernel":"wide8","strategy":"warp_drive"}"#,
            r#"{"kernel":"wide8","strategy":"beam","beam":0}"#,
        ] {
            let v = decode(body).unwrap();
            assert!(
                RankRequest::from_json(&v, true).is_err(),
                "accepted: {body}"
            );
        }
        // /v1/advise rejects the knobs outright as unknown fields.
        let v = decode(r#"{"kernel":"wide8","strategy":"beam"}"#).unwrap();
        assert!(RankRequest::from_json(&v, false).is_err());
    }
}
