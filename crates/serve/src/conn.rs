//! Per-connection state for the event-driven server: a nonblocking
//! `TcpStream` plus the read buffer feeding [`crate::http::parse_request_bytes`]
//! and the write buffer holding not-yet-flushed response bytes.
//!
//! The state machine is deliberately small. A connection is either
//! *parsing* (reading bytes, yielding complete requests in arrival
//! order) or *busy* (one of its requests was dispatched to the worker
//! pool and its response hasn't been enqueued yet). While busy, the
//! event loop stops parsing — and stops *reading* — so pipelined
//! responses can never overtake their requests and a flood of pipelined
//! bytes can't balloon memory behind a slow computation. Everything
//! else (routing, deadlines policy, metrics) lives in the server; this
//! module only moves bytes.

use crate::http::{parse_request_bytes, HttpError, Parse, Request};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Cap on buffered-but-unparsed request bytes. One maximal request
/// (line + headers + body) always fits; a peer that pipelines far ahead
/// of our parsing simply stops being read until we catch up.
const MAX_INBUF: usize =
    crate::http::MAX_BODY_BYTES + (crate::http::MAX_HEADERS + 2) * crate::http::MAX_LINE_BYTES;

/// What a readiness-driven read pass observed.
#[derive(Debug, PartialEq, Eq)]
pub enum FillResult {
    /// New bytes landed in the buffer.
    Data,
    /// Orderly EOF from the peer.
    Eof,
    /// Nothing available right now (`WouldBlock` with no data).
    Idle,
}

/// One live client connection.
pub struct Conn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    /// How much of `outbuf` has already been written to the socket.
    out_pos: usize,
    /// When the first byte of the *current* partially-read request
    /// arrived — the anchor for the cumulative slowloris deadline.
    /// `None` between requests (an idle keep-alive peer is not on any
    /// clock).
    pub first_byte_at: Option<Instant>,
    /// A request from this connection is in flight in the worker pool;
    /// parsing (and reading) is paused until its response is enqueued.
    pub busy: bool,
    /// Close the socket once `outbuf` drains.
    pub close_after_flush: bool,
    /// The peer is gone (EOF/reset) — reap after any pending writes.
    pub dead: bool,
}

impl Conn {
    /// Wrap an accepted stream. The caller has already made it
    /// nonblocking.
    pub fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            out_pos: 0,
            first_byte_at: None,
            busy: false,
            close_after_flush: false,
            dead: false,
        }
    }

    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Should the poller watch this connection for readability?
    /// Not while busy (ordering + backpressure) and not once the input
    /// buffer is at capacity.
    pub fn wants_read(&self) -> bool {
        !self.busy && !self.close_after_flush && !self.dead && self.inbuf.len() < MAX_INBUF
    }

    /// Should the poller watch for writability? Only when a flush is
    /// actually pending — waking on an always-writable socket would
    /// spin the loop.
    pub fn wants_write(&self) -> bool {
        self.out_pos < self.outbuf.len()
    }

    /// Read whatever the socket has, up to the buffer cap. Returns
    /// `Data` if any bytes arrived this pass (even if EOF followed —
    /// the buffered bytes still get parsed; `dead` records the EOF).
    pub fn fill(&mut self) -> FillResult {
        let mut got = false;
        let mut chunk = [0u8; 16 * 1024];
        while self.inbuf.len() < MAX_INBUF {
            let room = (MAX_INBUF - self.inbuf.len()).min(chunk.len());
            match self.stream.read(&mut chunk[..room]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    if self.inbuf.is_empty() && self.first_byte_at.is_none() {
                        self.first_byte_at = Some(Instant::now());
                    }
                    self.inbuf.extend_from_slice(&chunk[..n]);
                    got = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if got {
            FillResult::Data
        } else if self.dead {
            FillResult::Eof
        } else {
            FillResult::Idle
        }
    }

    /// Try to parse the next complete request off the buffer.
    ///
    /// * `Some(Ok(req))` — a full request; its bytes are consumed and
    ///   the slowloris clock is reset (re-armed if pipelined bytes
    ///   remain).
    /// * `Some(Err(e))` — the buffer can never parse (or the peer died
    ///   mid-request); answer and close.
    /// * `None` — need more bytes.
    ///
    /// Never called while `busy` — the server enforces that to keep
    /// pipelined responses in order.
    pub fn next_request(&mut self) -> Option<Result<Request, HttpError>> {
        debug_assert!(!self.busy);
        if self.inbuf.is_empty() {
            return None;
        }
        match parse_request_bytes(&self.inbuf) {
            Parse::Complete { req, consumed } => {
                self.inbuf.drain(..consumed);
                self.first_byte_at = if self.inbuf.is_empty() {
                    None
                } else {
                    // Pipelined bytes behind this request: their clock
                    // starts now.
                    Some(Instant::now())
                };
                Some(Ok(req))
            }
            Parse::Partial => {
                if self.dead {
                    // EOF with a half request buffered: a truncated
                    // request, same verdict as the blocking reader.
                    Some(Err(HttpError::Malformed("eof inside request".into())))
                } else {
                    None
                }
            }
            Parse::Bad(e) => Some(Err(e)),
        }
    }

    /// Queue response bytes for flushing.
    pub fn enqueue(&mut self, bytes: &[u8]) {
        self.outbuf.extend_from_slice(bytes);
    }

    /// Write as much pending output as the socket accepts. Returns
    /// `true` once the buffer is fully drained.
    pub fn flush(&mut self) -> bool {
        while self.out_pos < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.out_pos..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.out_pos >= self.outbuf.len() {
            self.outbuf.clear();
            self.out_pos = 0;
            true
        } else {
            false
        }
    }

    /// Is this connection finished (dead, or told to close and fully
    /// flushed)?
    pub fn reapable(&self) -> bool {
        self.dead || (self.close_after_flush && !self.wants_write())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::time::Duration;

    fn pair() -> (TcpStream, Conn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        (client, Conn::new(server))
    }

    fn fill_until_data(conn: &mut Conn) {
        let t0 = Instant::now();
        loop {
            match conn.fill() {
                FillResult::Data | FillResult::Eof => return,
                FillResult::Idle => {
                    assert!(t0.elapsed() < Duration::from_secs(5), "no data arrived");
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
    }

    #[test]
    fn parses_pipelined_requests_in_order() {
        let (mut client, mut conn) = pair();
        client
            .write_all(b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n")
            .unwrap();
        fill_until_data(&mut conn);
        let first = conn.next_request().unwrap().unwrap();
        assert_eq!(first.path(), "/healthz");
        let second = conn.next_request().unwrap().unwrap();
        assert_eq!(second.path(), "/metrics");
        assert!(conn.next_request().is_none());
        assert!(conn.first_byte_at.is_none(), "clock must disarm when idle");
    }

    #[test]
    fn partial_request_arms_the_slowloris_clock() {
        let (mut client, mut conn) = pair();
        client.write_all(b"GET /heal").unwrap();
        fill_until_data(&mut conn);
        assert!(conn.next_request().is_none());
        assert!(conn.first_byte_at.is_some(), "clock must arm on first byte");
        client.write_all(b"thz HTTP/1.1\r\n\r\n").unwrap();
        fill_until_data(&mut conn);
        let req = conn.next_request().unwrap().unwrap();
        assert_eq!(req.path(), "/healthz");
        assert!(conn.first_byte_at.is_none());
    }

    #[test]
    fn eof_mid_request_is_malformed() {
        let (mut client, mut conn) = pair();
        client
            .write_all(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort")
            .unwrap();
        drop(client);
        // Keep filling until the EOF lands.
        let t0 = Instant::now();
        while !conn.dead {
            conn.fill();
            assert!(t0.elapsed() < Duration::from_secs(5));
        }
        match conn.next_request() {
            Some(Err(HttpError::Malformed(_))) => {}
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn flush_drains_and_reports_completion() {
        let (mut client, mut conn) = pair();
        conn.enqueue(b"HTTP/1.1 200 OK\r\ncontent-length: 2\r\n\r\nok");
        assert!(conn.wants_write());
        assert!(conn.flush());
        assert!(!conn.wants_write());
        let mut buf = [0u8; 128];
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let n = client.read(&mut buf).unwrap();
        assert!(std::str::from_utf8(&buf[..n]).unwrap().ends_with("ok"));
    }

    #[test]
    fn busy_connection_stops_reading() {
        let (_client, mut conn) = pair();
        assert!(conn.wants_read());
        conn.busy = true;
        assert!(!conn.wants_read());
        conn.busy = false;
        conn.close_after_flush = true;
        assert!(!conn.wants_read());
        assert!(conn.reapable());
    }
}
