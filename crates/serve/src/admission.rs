//! Per-tenant admission control and the graceful-degradation ladder
//! (DESIGN.md §15).
//!
//! Three pieces, all deterministic and individually testable:
//!
//! * [`TokenBucket`] — per-tenant request quota. Out-of-quota traffic
//!   is refused with `429` *before* any model work; in-quota traffic is
//!   never shed by the quota. Integer micro-token arithmetic, so two
//!   buckets fed the same instants make identical decisions.
//! * [`CircuitBreaker`] — closed → open → half-open on consecutive
//!   failures (5xx, watchdog kills). The breaker never rejects a
//!   request: an open breaker feeds the ladder instead, so clients keep
//!   getting answers — cheaper, gap-bounded ones.
//! * [`degradation_level`] — the pure ladder policy: queue occupancy,
//!   breaker state, and remaining deadline budget map to a level, and
//!   [`strategy_cap`] maps the level to the most expensive search
//!   strategy still allowed. Level 1 caps at beam search, level 2 at
//!   local search. The cap only ever *downgrades*: a request already at
//!   or below the cap runs unchanged and is not stamped degraded.
//!
//! Every degraded answer is still bit-deterministic (the downgraded
//! strategy is itself deterministic) and carries its
//! [`gap_upper_bound`](hms_core::EngineStats::gap_upper_bound) on the
//! wire, so a client can always tell exact from approximate.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use hms_core::SearchStrategy;

/// Micro-tokens per request — integer arithmetic keeps refill exact.
const MICRO: u64 = 1_000_000;

/// A deterministic token bucket: `burst` requests of headroom refilled
/// at `per_sec` requests per second.
#[derive(Debug)]
pub struct TokenBucket {
    burst_micro: u64,
    per_sec: u64,
    state: Mutex<BucketState>,
}

#[derive(Debug)]
struct BucketState {
    tokens_micro: u64,
    last: Instant,
}

impl TokenBucket {
    /// A full bucket created now. `burst` is clamped to at least 1 so a
    /// configured quota can never refuse *everything*.
    pub fn new(burst: u64, per_sec: u64) -> TokenBucket {
        TokenBucket::new_at(burst, per_sec, Instant::now())
    }

    /// Test constructor: a full bucket whose clock starts at `now`.
    pub fn new_at(burst: u64, per_sec: u64, now: Instant) -> TokenBucket {
        let burst_micro = burst.max(1).saturating_mul(MICRO);
        TokenBucket {
            burst_micro,
            per_sec,
            state: Mutex::new(BucketState {
                tokens_micro: burst_micro,
                last: now,
            }),
        }
    }

    /// Take one token if available. Equivalent to
    /// [`try_take_at`](Self::try_take_at) with the current instant.
    pub fn try_take(&self) -> bool {
        self.try_take_at(Instant::now())
    }

    /// Take one token as of `now`. Refill is computed from whole
    /// elapsed microseconds, so the decision sequence is a pure function
    /// of the instants handed in.
    pub fn try_take_at(&self, now: Instant) -> bool {
        let mut s = self
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let elapsed_us = now.saturating_duration_since(s.last).as_micros() as u64;
        if elapsed_us > 0 {
            s.tokens_micro = s
                .tokens_micro
                .saturating_add(elapsed_us.saturating_mul(self.per_sec))
                .min(self.burst_micro);
            s.last = now;
        }
        if s.tokens_micro >= MICRO {
            s.tokens_micro -= MICRO;
            true
        } else {
            false
        }
    }
}

/// The breaker's observable state, in increasing severity order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation.
    Closed,
    /// Cooldown elapsed: the next requests probe at a degraded level;
    /// one success closes the breaker, one failure re-opens it.
    HalfOpen,
    /// Tripped: every search is forced to the bottom of the ladder
    /// until the cooldown elapses.
    Open,
}

impl BreakerState {
    /// The `hms_breaker_state` gauge value.
    pub fn gauge(self) -> u64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        }
    }
}

/// A deterministic circuit breaker: `threshold` *consecutive* failures
/// open it, `cooldown` later it goes half-open, and the first
/// success/failure in half-open closes/re-opens it.
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    inner: Mutex<BreakerInner>,
}

#[derive(Debug, Default)]
struct BreakerInner {
    consecutive_failures: u32,
    opened_at: Option<Instant>,
}

impl CircuitBreaker {
    pub fn new(threshold: u32, cooldown: Duration) -> CircuitBreaker {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            inner: Mutex::new(BreakerInner::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BreakerInner> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub fn state(&self) -> BreakerState {
        self.state_at(Instant::now())
    }

    pub fn state_at(&self, now: Instant) -> BreakerState {
        match self.lock().opened_at {
            None => BreakerState::Closed,
            Some(t) if now.saturating_duration_since(t) < self.cooldown => BreakerState::Open,
            Some(_) => BreakerState::HalfOpen,
        }
    }

    /// A request finished without a server-side failure.
    pub fn on_success(&self) {
        let mut s = self.lock();
        s.consecutive_failures = 0;
        s.opened_at = None;
    }

    /// A request failed server-side (5xx or watchdog kill).
    pub fn on_failure(&self) {
        self.on_failure_at(Instant::now());
    }

    pub fn on_failure_at(&self, now: Instant) {
        let mut s = self.lock();
        s.consecutive_failures = s.consecutive_failures.saturating_add(1);
        let half_open = s
            .opened_at
            .is_some_and(|t| now.saturating_duration_since(t) >= self.cooldown);
        if half_open || s.consecutive_failures >= self.threshold {
            // A half-open probe failing re-opens immediately; otherwise
            // the consecutive-failure threshold trips the breaker.
            s.opened_at = Some(now);
        }
    }
}

/// The pure ladder policy. Inputs are the three pressure signals the
/// server can observe without touching a request:
///
/// * queue occupancy (`queue_len` of `queue_depth` pending cold jobs) —
///   ≥ 50% is level 1, ≥ 75% is level 2 (a zero-depth queue sheds at
///   accept and contributes nothing here);
/// * breaker state — half-open is level 1, open is level 2;
/// * remaining deadline budget (`remaining` of `budget`, already net of
///   any clock skew) — under half is level 1, under a quarter level 2.
///
/// The result is the *maximum* pressure across signals, so recovery is
/// monotone: each signal clearing can only lower the level.
pub fn degradation_level(
    queue_len: usize,
    queue_depth: usize,
    breaker: BreakerState,
    remaining: Option<Duration>,
    budget: Duration,
) -> u8 {
    let mut level = 0u8;
    if queue_depth > 0 {
        if queue_len.saturating_mul(4) >= queue_depth.saturating_mul(3) {
            level = level.max(2);
        } else if queue_len.saturating_mul(2) >= queue_depth {
            level = level.max(1);
        }
    }
    level = level.max(match breaker {
        BreakerState::Closed => 0,
        BreakerState::HalfOpen => 1,
        BreakerState::Open => 2,
    });
    if let Some(rem) = remaining {
        if rem < budget / 4 {
            level = level.max(2);
        } else if rem < budget / 2 {
            level = level.max(1);
        }
    }
    level
}

/// The most expensive strategy each ladder level still allows. Level 0
/// allows everything (`None`).
pub fn strategy_cap(level: u8) -> Option<SearchStrategy> {
    match level {
        0 => None,
        1 => Some(SearchStrategy::Beam {
            width: SearchStrategy::DEFAULT_BEAM_WIDTH,
        }),
        _ => Some(SearchStrategy::LocalSearch {
            seed: SearchStrategy::DEFAULT_SEED,
        }),
    }
}

/// Relative cost rank used by [`apply_cap`] — higher is more expensive.
fn strategy_cost(s: &SearchStrategy) -> u8 {
    match s {
        SearchStrategy::Exhaustive => 4,
        SearchStrategy::BranchAndBound => 3,
        SearchStrategy::SuccessiveHalving => 2,
        SearchStrategy::Beam { .. } => 1,
        SearchStrategy::LocalSearch { .. } => 0,
    }
}

/// Downgrade `requested` to `cap` when it is strictly more expensive.
/// Returns the strategy to actually run and whether the response must
/// be stamped `"degraded": true`. A request already at or below the cap
/// is untouched — its response stays byte-identical to normal operation.
pub fn apply_cap(requested: SearchStrategy, cap: Option<SearchStrategy>) -> (SearchStrategy, bool) {
    match cap {
        Some(c) if strategy_cost(&requested) > strategy_cost(&c) => (c, true),
        _ => (requested, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_decisions_are_a_pure_function_of_instants() {
        let t0 = Instant::now();
        let run = |instants: &[Duration]| -> Vec<bool> {
            let b = TokenBucket::new_at(2, 10, t0);
            instants.iter().map(|d| b.try_take_at(t0 + *d)).collect()
        };
        let schedule = [
            Duration::ZERO,
            Duration::ZERO,
            Duration::ZERO,
            Duration::from_millis(100), // refills one token at 10/s
            Duration::from_millis(100),
        ];
        let a = run(&schedule);
        assert_eq!(a, vec![true, true, false, true, false]);
        assert_eq!(a, run(&schedule), "same instants, same decisions");
    }

    #[test]
    fn bucket_never_exceeds_burst() {
        let t0 = Instant::now();
        let b = TokenBucket::new_at(2, 1000, t0);
        // A long idle period refills to the burst cap, not beyond.
        let late = t0 + Duration::from_secs(60);
        assert!(b.try_take_at(late));
        assert!(b.try_take_at(late));
        assert!(!b.try_take_at(late));
    }

    #[test]
    fn breaker_walks_closed_open_half_open() {
        let t0 = Instant::now();
        let cb = CircuitBreaker::new(3, Duration::from_millis(100));
        assert_eq!(cb.state_at(t0), BreakerState::Closed);
        cb.on_failure_at(t0);
        cb.on_failure_at(t0);
        assert_eq!(cb.state_at(t0), BreakerState::Closed);
        cb.on_failure_at(t0);
        assert_eq!(cb.state_at(t0), BreakerState::Open);
        // Cooldown elapses: half-open.
        let probe = t0 + Duration::from_millis(150);
        assert_eq!(cb.state_at(probe), BreakerState::HalfOpen);
        // A half-open failure re-opens for a fresh cooldown.
        cb.on_failure_at(probe);
        assert_eq!(cb.state_at(probe), BreakerState::Open);
        let probe2 = probe + Duration::from_millis(150);
        assert_eq!(cb.state_at(probe2), BreakerState::HalfOpen);
        // A half-open success closes it and resets the failure count.
        cb.on_success();
        assert_eq!(cb.state_at(probe2), BreakerState::Closed);
        cb.on_failure_at(probe2);
        assert_eq!(cb.state_at(probe2), BreakerState::Closed);
    }

    #[test]
    fn ladder_levels_follow_the_policy_table() {
        let budget = Duration::from_secs(10);
        let lvl = |q: usize, b, rem: Option<Duration>| degradation_level(q, 100, b, rem, budget);
        assert_eq!(lvl(0, BreakerState::Closed, None), 0);
        assert_eq!(lvl(49, BreakerState::Closed, None), 0);
        assert_eq!(lvl(50, BreakerState::Closed, None), 1);
        assert_eq!(lvl(75, BreakerState::Closed, None), 2);
        assert_eq!(lvl(0, BreakerState::HalfOpen, None), 1);
        assert_eq!(lvl(0, BreakerState::Open, None), 2);
        assert_eq!(
            lvl(0, BreakerState::Closed, Some(Duration::from_secs(6))),
            0
        );
        assert_eq!(
            lvl(0, BreakerState::Closed, Some(Duration::from_secs(4))),
            1
        );
        assert_eq!(
            lvl(0, BreakerState::Closed, Some(Duration::from_secs(2))),
            2
        );
        // Signals combine by max, so recovery is monotone.
        assert_eq!(lvl(50, BreakerState::Open, Some(Duration::from_secs(2))), 2);
        // A zero-depth queue contributes nothing (shedding handles it).
        assert_eq!(
            degradation_level(0, 0, BreakerState::Closed, None, budget),
            0
        );
    }

    #[test]
    fn caps_only_ever_downgrade() {
        use SearchStrategy as S;
        let beam = S::Beam {
            width: S::DEFAULT_BEAM_WIDTH,
        };
        let local = S::LocalSearch {
            seed: S::DEFAULT_SEED,
        };
        // Level 0: everything passes untouched.
        assert_eq!(
            apply_cap(S::Exhaustive, strategy_cap(0)),
            (S::Exhaustive, false)
        );
        // Level 1: expensive strategies cap at beam; beam/local pass.
        assert_eq!(apply_cap(S::Exhaustive, strategy_cap(1)), (beam, true));
        assert_eq!(apply_cap(S::BranchAndBound, strategy_cap(1)), (beam, true));
        assert_eq!(
            apply_cap(S::Beam { width: 4 }, strategy_cap(1)),
            (S::Beam { width: 4 }, false)
        );
        assert_eq!(
            apply_cap(S::LocalSearch { seed: 7 }, strategy_cap(1)),
            (S::LocalSearch { seed: 7 }, false)
        );
        // Level 2: everything above local search caps at local search.
        assert_eq!(apply_cap(S::Exhaustive, strategy_cap(2)), (local, true));
        assert_eq!(
            apply_cap(S::Beam { width: 4 }, strategy_cap(2)),
            (local, true)
        );
        assert_eq!(
            apply_cap(S::LocalSearch { seed: 7 }, strategy_cap(2)),
            (S::LocalSearch { seed: 7 }, false)
        );
    }
}
