//! Single-flight coalescing: concurrent identical requests share one
//! engine evaluation.
//!
//! The sharded response cache already makes *sequential* repeats cheap,
//! but a thundering herd of identical cold requests all miss the cache
//! at once and race N engine evaluations for one answer. The flight
//! table closes that gap: the first arrival for a key becomes the
//! *leader* and computes; everyone else *joins* and waits for the
//! leader's bytes. One lock guards the whole table, and completion
//! removes the key and collects the waiters in the same critical
//! section joiners insert under — so a waiter can never be added to a
//! flight that already landed (the classic lost-wakeup of naive
//! check-then-wait designs).
//!
//! The key is the request's routing identity: path plus the raw body
//! bytes. Hashing the *bytes* (not the parsed query) is deliberate —
//! two bodies that differ only in whitespace do not coalesce, but two
//! tenants' queries (which differ in their `config` member) can never
//! be confused, and no parse happens before the coalescing decision.

use std::collections::HashMap;
use std::sync::Mutex;

/// Identity of one in-flight computation: request path + raw body.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FlightKey {
    pub path: String,
    pub body: Vec<u8>,
}

impl FlightKey {
    pub fn new(path: &str, body: &[u8]) -> FlightKey {
        FlightKey {
            path: path.to_string(),
            body: body.to_vec(),
        }
    }
}

/// The verdict of [`FlightTable::join`].
#[derive(Debug, PartialEq, Eq)]
pub enum Join {
    /// No flight existed: the caller is the leader and must compute,
    /// then call [`FlightTable::complete`] exactly once.
    Lead,
    /// An identical request is already in flight; the caller's waiter
    /// is parked and will be returned to the leader's `complete`.
    Joined,
}

/// All in-flight computations, keyed by request identity. `W` is
/// whatever the caller needs to deliver a finished response (the server
/// uses a shard/connection address; tests use channels).
pub struct FlightTable<W> {
    flights: Mutex<HashMap<FlightKey, Vec<W>>>,
}

impl<W> FlightTable<W> {
    pub fn new() -> FlightTable<W> {
        FlightTable {
            flights: Mutex::new(HashMap::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<FlightKey, Vec<W>>> {
        // A panicking holder can only have left a structurally complete
        // map (plain insert/remove), so poisoning is not data loss.
        self.flights
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Join the flight for `key`, registering `waiter` for its result.
    /// The first joiner leads; the leader's own waiter is parked too,
    /// so [`complete`](FlightTable::complete) returns *all* N waiters
    /// of an N-way coalesce.
    pub fn join(&self, key: &FlightKey, waiter: W) -> Join {
        let mut flights = self.lock();
        match flights.get_mut(key) {
            Some(waiters) => {
                waiters.push(waiter);
                Join::Joined
            }
            None => {
                flights.insert(key.clone(), vec![waiter]);
                Join::Lead
            }
        }
    }

    /// Land the flight: remove `key` and return every parked waiter.
    /// Runs under the same lock `join` inserts under, so the returned
    /// list is complete — later identical requests start a new flight
    /// (and will hit the response cache the leader just populated).
    pub fn complete(&self, key: &FlightKey) -> Vec<W> {
        self.lock().remove(key).unwrap_or_default()
    }

    /// Number of distinct computations currently in flight.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<W> Default for FlightTable<W> {
    fn default() -> Self {
        FlightTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::sync::Arc;

    #[test]
    fn first_joiner_leads_rest_follow() {
        let table: FlightTable<u32> = FlightTable::new();
        let key = FlightKey::new("/v1/predict", b"{\"kernel\":\"vecadd\"}");
        assert_eq!(table.join(&key, 1), Join::Lead);
        assert_eq!(table.join(&key, 2), Join::Joined);
        assert_eq!(table.join(&key, 3), Join::Joined);
        assert_eq!(table.len(), 1);
        let waiters = table.complete(&key);
        assert_eq!(waiters, vec![1, 2, 3]);
        assert!(table.is_empty());
        // After completion the key leads again (cache handles reuse).
        assert_eq!(table.join(&key, 4), Join::Lead);
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let table: FlightTable<u32> = FlightTable::new();
        let a = FlightKey::new("/v1/predict", b"{\"kernel\":\"vecadd\"}");
        let b = FlightKey::new("/v1/predict", b"{\"kernel\":\"spmv\"}");
        let c = FlightKey::new("/v1/search", b"{\"kernel\":\"vecadd\"}");
        assert_eq!(table.join(&a, 1), Join::Lead);
        assert_eq!(table.join(&b, 2), Join::Lead);
        assert_eq!(table.join(&c, 3), Join::Lead);
        assert_eq!(table.len(), 3);
        assert_eq!(table.complete(&a), vec![1]);
        assert_eq!(table.complete(&b), vec![2]);
        assert_eq!(table.complete(&c), vec![3]);
    }

    /// The lost-waiter race: joiners racing a completing leader must
    /// each end up in exactly one flight — either collected by this
    /// completion or leading a fresh flight. Nobody vanishes.
    #[test]
    fn no_waiter_is_lost_under_contention() {
        let table: Arc<FlightTable<mpsc::Sender<()>>> = Arc::new(FlightTable::new());
        let key = FlightKey::new("/v1/search", b"{}");
        for _round in 0..50 {
            let mut receivers = Vec::new();
            let mut handles = Vec::new();
            for _ in 0..4 {
                let (tx, rx) = mpsc::channel();
                receivers.push(rx);
                let t = Arc::clone(&table);
                let k = key.clone();
                handles.push(std::thread::spawn(move || {
                    match t.join(&k, tx) {
                        Join::Lead => {
                            // Leader "computes" instantly and lands.
                            for w in t.complete(&k) {
                                let _ = w.send(());
                            }
                        }
                        Join::Joined => {}
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            // Any flight left open (a joiner landed after the leader
            // completed and became a new leader) is finished here.
            for w in table.complete(&key) {
                let _ = w.send(());
            }
            for rx in receivers {
                rx.recv_timeout(std::time::Duration::from_secs(5))
                    .expect("a waiter was lost");
            }
            assert!(table.is_empty());
        }
    }
}
