//! Typed endpoint handlers: the [`Handler`] trait every route
//! implements, plus the built-in advisory endpoints.
//!
//! A handler splits each request into two stages matched to the
//! event-driven server's two kinds of thread:
//!
//! * [`Handler::poll`] runs **on the event loop** and must stay cheap:
//!   answer from static state or a cache ([`Outcome::Ready`]), or ask
//!   for the slow path ([`Outcome::Compute`]). Warm traffic — the
//!   overwhelming majority for an advisory service — never leaves the
//!   loop thread, which is what makes high-connection throughput
//!   possible on small machines.
//! * [`Handler::compute`] runs **on a worker thread** and may block on
//!   model work (sample simulation, engine search). Identical
//!   concurrent requests are single-flighted by the server before
//!   `compute` runs, so a thundering herd costs one evaluation.
//!
//! The [`Ctx`] passed to both stages carries the request's arrival
//! time, the server deadline, metrics, and the multi-tenant registry;
//! the per-tenant response caches stay internal to the built-ins.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hms_kernels::Scale;

use crate::admission::{apply_cap, strategy_cap};
use crate::api::{Advisor, ApiError, Effort, PredictQuery, RankQuery};
use crate::http::Request;
use crate::metrics::Metrics;
use crate::server::{current_ready_state, PredKey, RankKey, ReadyState, Shared};
use crate::singleflight::FlightKey;
use crate::wire::v1::error_body;
use crate::wire::{decode, Json};

/// One finished response.
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    /// Shared so an N-way coalesced response is encoded once.
    pub body: Arc<String>,
    /// May the server memoize this response for byte-identical future
    /// requests? Only deterministic 200s (and never partial search
    /// results) say yes.
    pub cacheable: bool,
}

impl Response {
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: Arc::new(body.into()),
            cacheable: false,
        }
    }

    /// A JSON 200 whose body is already shared (cache hits).
    pub fn json_shared(body: Arc<String>) -> Response {
        Response {
            status: 200,
            content_type: "application/json",
            body,
            cacheable: false,
        }
    }

    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain",
            body: Arc::new(body.into()),
            cacheable: false,
        }
    }

    /// The standard `{"error": msg}` body.
    pub fn error(status: u16, msg: &str) -> Response {
        Response::json(status, error_body(msg))
    }

    /// Mark this response memoizable by the server's raw-request cache.
    pub fn cacheable(mut self) -> Response {
        self.cacheable = true;
        self
    }
}

/// What [`Handler::poll`] decided.
pub enum Outcome {
    /// Answer now, on the event loop.
    Ready(Response),
    /// Dispatch to the worker pool ([`Handler::compute`] runs there).
    /// With `coalesce`, concurrent identical requests (same target +
    /// body bytes) share one `compute` — only set it for handlers whose
    /// response is a pure function of the request.
    Compute { coalesce: bool },
}

/// Per-request context handed to both handler stages.
pub struct Ctx<'a> {
    pub(crate) shared: &'a Shared,
    pub(crate) arrived: Instant,
    /// The pool watchdog's cooperative cancel flag for this compute
    /// slot (`None` on the event-loop poll stage).
    pub(crate) cancel: Option<Arc<AtomicBool>>,
}

impl Ctx<'_> {
    /// When the request was parsed off the socket — the deadline anchor.
    pub fn arrived(&self) -> Instant {
        self.arrived
    }

    /// The server's per-request deadline.
    pub fn deadline(&self) -> Duration {
        self.shared.deadline
    }

    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Current readiness (also refreshes the `hms_ready_state` gauge).
    pub fn ready_state(&self) -> ReadyState {
        current_ready_state(self.shared)
    }

    /// Resolve an optional `config` member to a tenant index (`None` =
    /// default tenant). The error is safe to echo in a 400.
    pub fn resolve_config(&self, name: Option<&str>) -> Result<usize, String> {
        self.shared.registry.resolve(name)
    }

    /// The advisor of a resolved tenant.
    pub fn advisor(&self, tenant: usize) -> &Arc<Advisor> {
        self.shared.registry.advisor(tenant)
    }

    /// The watchdog's cooperative cancel flag for this compute slot.
    pub fn cancel_flag(&self) -> Option<Arc<AtomicBool>> {
        self.cancel.as_ref().map(Arc::clone)
    }

    /// Charge one token of tenant `idx`'s quota; out-of-quota cold
    /// requests are refused with 429 before any model work. Tenants
    /// without a configured quota always admit.
    pub fn admit(&self, tenant: usize) -> Result<(), Response> {
        let adm = &self.shared.admission[tenant];
        if let Some(bucket) = &adm.bucket {
            if !bucket.try_take() {
                self.metrics()
                    .admission_rejected
                    .fetch_add(1, Ordering::Relaxed);
                return Err(Response::error(
                    429,
                    "quota exhausted for this config; retry later",
                ));
            }
        }
        Ok(())
    }

    /// Refuse with 504 if the request is already past its deadline —
    /// checked before (and between) expensive stages, so work a dead
    /// client will never see is not started.
    pub fn check_deadline(&self) -> Result<(), Response> {
        if self.arrived.elapsed() > self.shared.deadline {
            self.shared
                .metrics
                .deadline_exceeded
                .fetch_add(1, Ordering::Relaxed);
            Err(Response::error(
                504,
                &format!(
                    "deadline exceeded ({} ms)",
                    self.shared.deadline.as_millis()
                ),
            ))
        } else {
            Ok(())
        }
    }

    /// Raw-request memo: a byte-identical request seen before answers
    /// with the memoized body without even parsing its JSON.
    fn raw_get(&self, req: &Request) -> Option<Arc<String>> {
        self.shared
            .raw_cache
            .get(&FlightKey::new(&req.target, &req.body))
    }

    fn raw_put(&self, req: &Request, body: &Arc<String>) {
        self.shared
            .raw_cache
            .insert(FlightKey::new(&req.target, &req.body), Arc::clone(body));
    }
}

/// One endpoint. Implementations must be cheap in `poll` (it runs on
/// the event loop) and may block in `compute` (it runs on a worker).
pub trait Handler: Send + Sync {
    fn poll(&self, ctx: &Ctx<'_>, req: &Request) -> Outcome;

    /// The slow path. Only called after `poll` returned
    /// [`Outcome::Compute`]; the default is a loud 500 so a handler
    /// that forgets to implement it fails visibly, not silently.
    fn compute(&self, _ctx: &Ctx<'_>, _req: &Request) -> Response {
        Response::error(500, "endpoint has no compute stage")
    }
}

/// Decode a POST body as JSON, mapping failures to ready-made 400s.
fn parse_body(req: &Request) -> Result<Json, Response> {
    let text =
        std::str::from_utf8(&req.body).map_err(|_| Response::error(400, "body is not UTF-8"))?;
    decode(text).map_err(|e| Response::error(400, &format!("invalid JSON: {e}")))
}

/// Map an [`ApiError`] to its response (400/404/500 per classification).
fn api_error(e: ApiError) -> Response {
    let status = match &e {
        ApiError::BadRequest(_) => 400,
        ApiError::UnknownKernel(_) => 404,
        ApiError::Model(_) => 500,
    };
    Response::error(status, &e.to_string())
}

/// Parse `?scale=` (default full) for `GET /v1/kernels`.
fn query_scale(req: &Request) -> Result<Scale, String> {
    match req.target.split_once('?') {
        None => Ok(Scale::Full),
        Some((_, qs)) => {
            for pair in qs.split('&') {
                if let Some(v) = pair.strip_prefix("scale=") {
                    return Scale::parse(v).ok_or_else(|| format!("unknown scale `{v}`"));
                }
            }
            Ok(Scale::Full)
        }
    }
}

fn count_effort(m: &Metrics, e: &Effort) {
    if e.simulated {
        m.simulations.fetch_add(1, Ordering::Relaxed);
        m.profile_cache_misses.fetch_add(1, Ordering::Relaxed);
    }
    if e.profile_hit {
        m.profile_cache_hits.fetch_add(1, Ordering::Relaxed);
    }
}

/// Feed a finished compute's outcome to the tenant's circuit breaker:
/// 5xx responses count as failures (watchdog kills are fed by the
/// watchdog itself), a 200 as success. Client errors say nothing about
/// the server's health and leave the breaker alone.
fn feed_breaker(ctx: &Ctx<'_>, tenant: usize, resp: &Response) {
    let breaker = &ctx.shared.admission[tenant].breaker;
    if resp.status >= 500 {
        breaker.on_failure();
    } else if resp.status == 200 {
        breaker.on_success();
    }
}

/// `GET /healthz` — liveness, nothing else.
pub(crate) struct Healthz;

impl Handler for Healthz {
    fn poll(&self, _ctx: &Ctx<'_>, _req: &Request) -> Outcome {
        Outcome::Ready(Response::text(200, "ok\n"))
    }
}

/// `GET /readyz` — readiness, distinct from liveness.
pub(crate) struct Readyz;

impl Handler for Readyz {
    fn poll(&self, ctx: &Ctx<'_>, _req: &Request) -> Outcome {
        let (status, body) = match ctx.ready_state() {
            // A degraded ladder still answers 200: the server serves
            // every request, just with cheaper, gap-bounded strategies.
            // The body says so, and `hms_degradation_level` gauges it.
            ReadyState::Ready => match ctx.shared.server_ladder_level() {
                0 => (200, "ready\n".to_string()),
                lvl => (200, format!("ready (degraded level {lvl})\n")),
            },
            ReadyState::Degraded => (503, "degraded: request queue at capacity\n".to_string()),
            ReadyState::Draining => (503, "draining: shutdown in progress\n".to_string()),
        };
        Outcome::Ready(Response::text(status, body))
    }
}

/// `GET /metrics` — Prometheus text exposition.
pub(crate) struct MetricsEndpoint;

impl Handler for MetricsEndpoint {
    fn poll(&self, ctx: &Ctx<'_>, _req: &Request) -> Outcome {
        // Refresh the readiness and ladder gauges so a scrape sees the
        // same state `/readyz` would report right now.
        ctx.ready_state();
        ctx.shared.server_ladder_level();
        Outcome::Ready(Response {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            body: Arc::new(ctx.metrics().render()),
            cacheable: false,
        })
    }
}

/// `GET /v1/kernels` — the registry listing. Building every kernel
/// trace is bounded but not event-loop cheap, so it computes.
pub(crate) struct Kernels;

impl Handler for Kernels {
    fn poll(&self, _ctx: &Ctx<'_>, req: &Request) -> Outcome {
        match query_scale(req) {
            Ok(_) => Outcome::Compute { coalesce: true },
            Err(e) => Outcome::Ready(Response::error(400, &e)),
        }
    }

    fn compute(&self, ctx: &Ctx<'_>, req: &Request) -> Response {
        let scale = match query_scale(req) {
            Ok(s) => s,
            Err(e) => return Response::error(400, &e),
        };
        // The kernel registry is tenant-independent; the default
        // advisor's view is everyone's view.
        Response::json(200, ctx.advisor(0).kernels_body(scale).encode_pretty()).cacheable()
    }
}

/// `POST /v1/predict`.
pub(crate) struct Predict;

impl Predict {
    /// Parse + resolve the parts both stages need.
    fn query(&self, ctx: &Ctx<'_>, req: &Request) -> Result<(PredictQuery, usize), Response> {
        let v = parse_body(req)?;
        let q = PredictQuery::from_json(&v).map_err(api_error)?;
        let tenant = ctx
            .resolve_config(q.config.as_deref())
            .map_err(|e| Response::error(400, &e))?;
        Ok((q, tenant))
    }
}

impl Handler for Predict {
    fn poll(&self, ctx: &Ctx<'_>, req: &Request) -> Outcome {
        if let Err(resp) = ctx.check_deadline() {
            return Outcome::Ready(resp);
        }
        let m = ctx.metrics();
        if let Some(body) = ctx.raw_get(req) {
            m.prediction_cache_hits.fetch_add(1, Ordering::Relaxed);
            return Outcome::Ready(Response::json_shared(body));
        }
        let (q, tenant) = match self.query(ctx, req) {
            Ok(parts) => parts,
            Err(resp) => return Outcome::Ready(resp),
        };
        // Semantic fast path — only when the kernel trace is already
        // built (a cold build is worker-pool work).
        let t = ctx.shared.tenant(tenant);
        if let Some(kt) = t.advisor.cached_kernel(&q.kernel, q.scale) {
            let resolved = match t.advisor.resolve_placement(&kt, &q.moves) {
                Ok(r) => r,
                Err(e) => return Outcome::Ready(api_error(e)),
            };
            let key = PredKey::new(&t.advisor, &q, &kt, &resolved);
            if let Some(body) = t.pred_cache.get(&key) {
                m.prediction_cache_hits.fetch_add(1, Ordering::Relaxed);
                ctx.raw_put(req, &body);
                return Outcome::Ready(Response::json_shared(body));
            }
        }
        // Only cold requests (the ones that cost model work) consume
        // quota; warm cache hits above stay free.
        if let Err(resp) = ctx.admit(tenant) {
            return Outcome::Ready(resp);
        }
        Outcome::Compute { coalesce: true }
    }

    fn compute(&self, ctx: &Ctx<'_>, req: &Request) -> Response {
        if let Err(resp) = ctx.check_deadline() {
            return resp;
        }
        let (q, tenant) = match self.query(ctx, req) {
            Ok(parts) => parts,
            Err(resp) => return resp,
        };
        let resp = self.compute_for(ctx, &q, tenant);
        feed_breaker(ctx, tenant, &resp);
        resp
    }
}

impl Predict {
    /// The tenant-resolved slow path; split out so `compute` can feed
    /// the tenant's breaker with whatever this returns.
    fn compute_for(&self, ctx: &Ctx<'_>, q: &PredictQuery, tenant: usize) -> Response {
        let m = ctx.metrics();
        let t = ctx.shared.tenant(tenant);
        let kt = match t.advisor.kernel(&q.kernel, q.scale) {
            Ok(kt) => kt,
            Err(e) => return api_error(e),
        };
        let resolved = match t.advisor.resolve_placement(&kt, &q.moves) {
            Ok(r) => r,
            Err(e) => return api_error(e),
        };
        let key = PredKey::new(&t.advisor, q, &kt, &resolved);
        // The coalescing window only covers byte-identical requests; an
        // equivalent spelling (`moves` vs `placement`) may have filled
        // the semantic cache since `poll` looked.
        if let Some(body) = t.pred_cache.get(&key) {
            m.prediction_cache_hits.fetch_add(1, Ordering::Relaxed);
            return Response::json_shared(body).cacheable();
        }
        m.prediction_cache_misses.fetch_add(1, Ordering::Relaxed);
        if let Err(resp) = ctx.check_deadline() {
            return resp;
        }
        let mut effort = Effort::default();
        let (body, _pred) = match t.advisor.predict(q, &mut effort) {
            Ok(out) => out,
            Err(e) => return api_error(e),
        };
        count_effort(m, &effort);
        m.predictions_computed.fetch_add(1, Ordering::Relaxed);
        let body = Arc::new(body.encode_pretty());
        t.pred_cache.insert(key, Arc::clone(&body));
        Response::json_shared(body).cacheable()
    }
}

/// `POST /v1/advise` (`search: false`) and `POST /v1/search`
/// (`search: true` — search knobs allowed, stats block included).
pub(crate) struct Rank {
    pub(crate) search: bool,
}

impl Rank {
    fn query(&self, ctx: &Ctx<'_>, req: &Request) -> Result<(RankQuery, usize), Response> {
        let v = parse_body(req)?;
        let q = RankQuery::from_json(&v, self.search).map_err(api_error)?;
        let tenant = ctx
            .resolve_config(q.config.as_deref())
            .map_err(|e| Response::error(400, &e))?;
        Ok((q, tenant))
    }

    fn key(&self, advisor: &Advisor, q: &RankQuery) -> RankKey {
        RankKey {
            kernel: q.kernel.clone(),
            scale: q.scale,
            top: q.top,
            // Infallible here: `query()` already parsed the request, and
            // parsing rejects every unresolvable strategy combination.
            strategy: q
                .resolve_strategy()
                .expect("strategy validated at the parse edge"),
            include_stats: self.search,
            options: advisor.predictor.options,
            trained: advisor.predictor.overlap.is_trained(),
        }
    }
}

impl Handler for Rank {
    fn poll(&self, ctx: &Ctx<'_>, req: &Request) -> Outcome {
        if let Err(resp) = ctx.check_deadline() {
            return Outcome::Ready(resp);
        }
        let m = ctx.metrics();
        if let Some(body) = ctx.raw_get(req) {
            m.search_cache_hits.fetch_add(1, Ordering::Relaxed);
            return Outcome::Ready(Response::json_shared(body));
        }
        let (q, tenant) = match self.query(ctx, req) {
            Ok(parts) => parts,
            Err(resp) => return Outcome::Ready(resp),
        };
        let t = ctx.shared.tenant(tenant);
        if let Some(body) = t.rank_cache.get(&self.key(&t.advisor, &q)) {
            m.search_cache_hits.fetch_add(1, Ordering::Relaxed);
            ctx.raw_put(req, &body);
            return Outcome::Ready(Response::json_shared(body));
        }
        // Only cold requests (the ones that run the engine) consume
        // quota; warm cache hits above stay free.
        if let Err(resp) = ctx.admit(tenant) {
            return Outcome::Ready(resp);
        }
        Outcome::Compute { coalesce: true }
    }

    fn compute(&self, ctx: &Ctx<'_>, req: &Request) -> Response {
        if let Err(resp) = ctx.check_deadline() {
            return resp;
        }
        let (q, tenant) = match self.query(ctx, req) {
            Ok(parts) => parts,
            Err(resp) => return resp,
        };
        let resp = self.compute_for(ctx, &q, tenant);
        feed_breaker(ctx, tenant, &resp);
        resp
    }
}

impl Rank {
    /// The tenant-resolved slow path, with the degradation ladder in
    /// front of the engine: under pressure the requested strategy is
    /// downgraded (never upgraded) to the ladder's cap, and the
    /// response is stamped `"degraded": true` with the gap bound the
    /// cheaper strategy actually achieved. Degraded answers stay
    /// bit-deterministic — the downgraded strategy is itself
    /// deterministic — and are never cached.
    fn compute_for(&self, ctx: &Ctx<'_>, q: &RankQuery, tenant: usize) -> Response {
        let m = ctx.metrics();
        let t = ctx.shared.tenant(tenant);
        let key = self.key(&t.advisor, q);
        if let Some(body) = t.rank_cache.get(&key) {
            m.search_cache_hits.fetch_add(1, Ordering::Relaxed);
            return Response::json_shared(body).cacheable();
        }
        m.search_cache_misses.fetch_add(1, Ordering::Relaxed);
        if let Err(resp) = ctx.check_deadline() {
            return resp;
        }
        let mut effort = Effort::default();
        // The search stops at the request deadline and returns
        // best-so-far flagged `"partial": true` instead of timing out
        // with nothing. Injected clock skew drains the budget here —
        // degrading or truncating the search — but never feeds the
        // wall-clock 504 check above, so a skewed clock cannot turn
        // in-quota traffic into 5xx.
        let budget = ctx.shared.deadline.saturating_sub(ctx.shared.skew_ahead());
        let deadline = Some(ctx.arrived + budget);
        let remaining = budget.saturating_sub(ctx.arrived.elapsed());
        let level = ctx.shared.ladder_level(tenant, Some(remaining));
        let (effective, degraded) = apply_cap(key.strategy, strategy_cap(level));
        let (body, outcome) = match t.advisor.rank_capped(
            q,
            self.search,
            deadline,
            degraded.then_some(effective),
            ctx.cancel_flag(),
            &mut effort,
        ) {
            Ok(out) => out,
            Err(e) => return api_error(e),
        };
        count_effort(m, &effort);
        m.on_engine_stats(&outcome.stats);
        if degraded {
            m.degraded_responses.fetch_add(1, Ordering::Relaxed);
        }
        let body = Arc::new(body.encode_pretty());
        // Partial or degraded rankings reflect this request's pressure,
        // not the query — caching either would pin an approximation as
        // the answer forever.
        if !outcome.partial && !degraded {
            t.rank_cache.insert(key, Arc::clone(&body));
            Response::json_shared(body).cacheable()
        } else {
            Response::json_shared(body)
        }
    }
}
