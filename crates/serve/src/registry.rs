//! The multi-tenant config registry: one server instance advising over
//! a *named set* of GPU configurations.
//!
//! Cross-machine advisory work presumes a single service answering
//! placement queries for many hardware configurations — a K80 fleet
//! here, a C2050 island there. Each named entry ("tenant") owns a full
//! [`Advisor`] (machine config, predictor, kernel/profile caches), and
//! the server layers a *separate* response cache per tenant on top, so
//! tenants can never observe each other's cached bytes. Requests pick
//! a tenant with the optional `config` wire member; its absence selects
//! the default entry (index 0), keeping every pre-registry client and
//! response byte-identical.

use std::sync::Arc;

use hms_types::GpuConfig;

use crate::api::Advisor;

/// Named GPU configurations served by one instance. Index 0 is the
/// default tenant — the one unnamed requests resolve to.
pub struct ConfigRegistry {
    tenants: Vec<(String, Arc<Advisor>)>,
}

impl ConfigRegistry {
    /// A registry with one default tenant. `name` is what the `config`
    /// wire member must say to select it explicitly.
    pub fn new(name: impl Into<String>, advisor: Advisor) -> ConfigRegistry {
        ConfigRegistry {
            tenants: vec![(name.into(), Arc::new(advisor))],
        }
    }

    /// Add (or replace) a named tenant. The default stays whatever
    /// [`ConfigRegistry::new`] was given — replacing it swaps the
    /// advisor but keeps it the default.
    pub fn with(mut self, name: impl Into<String>, advisor: Advisor) -> ConfigRegistry {
        let name = name.into();
        let advisor = Arc::new(advisor);
        match self.tenants.iter_mut().find(|(n, _)| *n == name) {
            Some(slot) => slot.1 = advisor,
            None => self.tenants.push((name, advisor)),
        }
        self
    }

    /// Resolve a request's optional `config` member to a tenant index.
    /// `None` (member absent) is the default tenant. The error string is
    /// safe to echo in a 400 body.
    pub fn resolve(&self, name: Option<&str>) -> Result<usize, String> {
        match name {
            None => Ok(0),
            Some(n) => self
                .tenants
                .iter()
                .position(|(name, _)| name == n)
                .ok_or_else(|| {
                    format!(
                        "unknown config `{n}` (available: {})",
                        self.names().join(", ")
                    )
                }),
        }
    }

    /// The advisor of tenant `idx` (an index from [`resolve`](Self::resolve)).
    pub fn advisor(&self, idx: usize) -> &Arc<Advisor> {
        &self.tenants[idx].1
    }

    /// Tenant names, default first.
    pub fn names(&self) -> Vec<&str> {
        self.tenants.iter().map(|(n, _)| n.as_str()).collect()
    }

    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    pub fn is_empty(&self) -> bool {
        false // `new` always seats a default tenant
    }
}

/// The built-in GPU presets a tenant can be spawned from — the paper's
/// two evaluation machines plus the CI-sized toy config. This is what
/// `hms serve --tenant NAME=PRESET` accepts on the right-hand side.
pub fn preset(name: &str) -> Option<GpuConfig> {
    match name {
        "k80" => Some(GpuConfig::tesla_k80()),
        "c2050" => Some(GpuConfig::tesla_c2050()),
        "test-small" => Some(GpuConfig::test_small()),
        _ => None,
    }
}

/// The preset names [`preset`] accepts, for usage/error text.
pub const PRESET_NAMES: &[&str] = &["k80", "c2050", "test-small"];

#[cfg(test)]
mod tests {
    use super::*;
    use hms_core::Predictor;

    fn advisor(cfg: GpuConfig) -> Advisor {
        Advisor::new(cfg.clone(), Predictor::new(cfg))
    }

    #[test]
    fn default_resolves_without_a_name() {
        let reg = ConfigRegistry::new("k80", advisor(GpuConfig::tesla_k80()))
            .with("c2050", advisor(GpuConfig::tesla_c2050()));
        assert_eq!(reg.resolve(None), Ok(0));
        assert_eq!(reg.resolve(Some("k80")), Ok(0));
        assert_eq!(reg.resolve(Some("c2050")), Ok(1));
        assert_eq!(reg.names(), vec!["k80", "c2050"]);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn unknown_config_lists_available_names() {
        let reg = ConfigRegistry::new("default", advisor(GpuConfig::test_small()));
        let err = reg.resolve(Some("h100")).unwrap_err();
        assert!(err.contains("unknown config `h100`"), "{err}");
        assert!(err.contains("default"), "{err}");
    }

    #[test]
    fn with_replaces_same_named_tenant_in_place() {
        let reg = ConfigRegistry::new("a", advisor(GpuConfig::test_small()))
            .with("b", advisor(GpuConfig::tesla_k80()))
            .with("b", advisor(GpuConfig::tesla_c2050()));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.resolve(Some("b")), Ok(1));
        // The replacement advisor is the one seated.
        let gcfg = &reg.advisor(1).cfg;
        assert_eq!(gcfg.num_sms, GpuConfig::tesla_c2050().num_sms);
    }

    #[test]
    fn presets_cover_the_papers_machines() {
        assert_eq!(
            preset("k80").unwrap().num_sms,
            GpuConfig::tesla_k80().num_sms
        );
        assert_eq!(
            preset("c2050").unwrap().num_sms,
            GpuConfig::tesla_c2050().num_sms
        );
        assert!(preset("test-small").is_some());
        assert!(preset("h100").is_none());
        for name in PRESET_NAMES {
            assert!(preset(name).is_some(), "preset list out of sync: {name}");
        }
    }
}
