//! # hms-serve — placement-advisory server
//!
//! A zero-dependency (std-only) HTTP/1.1 service that answers the
//! paper's core question — *given a kernel and a candidate placement,
//! how long will it run?* — over the network, so placement decisions
//! can be made by tooling that doesn't link the model:
//!
//! * `POST /v1/predict` — predicted `T`, `T_comp`, `T_mem`, `T_overlap`
//!   (Eq. 1) for one kernel + scale + placement;
//! * `POST /v1/advise` — top-k placements, ranked;
//! * `POST /v1/search` — ranked placements plus the incremental
//!   engine's deterministic counters;
//! * `GET /v1/kernels` — the built-in kernel registry;
//! * `GET /metrics` — Prometheus text exposition (request counts,
//!   latency histograms, cache hit rates, engine counters);
//! * `GET /healthz` — liveness;
//! * `GET /readyz` — readiness, distinct from liveness: 503 with a
//!   reason while shedding (queue at capacity) or draining (shutdown).
//!
//! Everything is built from `std::net` + `std::thread`: a hand-rolled
//! escaping-correct JSON codec ([`wire`]), an HTTP/1.1 reader/writer
//! with strict limits ([`http`]), a sharded LRU ([`cache`]) keying
//! response bodies by `(kernel, scale, placement, model options)`, a
//! fixed worker pool with a bounded accept queue and load shedding
//! ([`server`]), and signal-driven graceful shutdown ([`signal`]).
//!
//! The same response-body builders back the CLI's `--json` mode
//! ([`api`]), so `hms predict --json ...` and `POST /v1/predict` are
//! byte-identical by construction — asserted by the integration tests.

pub mod api;
pub mod cache;
pub mod http;
pub mod metrics;
pub mod server;
pub mod signal;
pub mod wire;

pub use api::{Advisor, ApiError, Effort, PredictQuery, RankQuery};
pub use cache::ShardedLru;
pub use metrics::{Metrics, Route};
pub use server::{ready_state, spawn, ReadyState, ServeConfig, ServerHandle};
pub use wire::{decode, Json, WireError};
