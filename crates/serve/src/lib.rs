//! # hms-serve — placement-advisory server
//!
//! A zero-dependency (std-only) HTTP/1.1 service that answers the
//! paper's core question — *given a kernel and a candidate placement,
//! how long will it run?* — over the network, so placement decisions
//! can be made by tooling that doesn't link the model:
//!
//! * `POST /v1/predict` — predicted `T`, `T_comp`, `T_mem`, `T_overlap`
//!   (Eq. 1) for one kernel + scale + placement;
//! * `POST /v1/advise` — top-k placements, ranked;
//! * `POST /v1/search` — ranked placements plus the incremental
//!   engine's deterministic counters;
//! * `GET /v1/kernels` — the built-in kernel registry;
//! * `GET /metrics` — Prometheus text exposition (request counts,
//!   latency histograms, cache hit rates, engine counters);
//! * `GET /healthz` — liveness;
//! * `GET /readyz` — readiness, distinct from liveness: 503 with a
//!   reason while shedding (queue at capacity) or draining (shutdown).
//!
//! Everything is built from `std::net` + `std::thread` + a `poll(2)`
//! binding ([`poller`] — std already links libc): a hand-rolled
//! escaping-correct JSON codec ([`wire`]), an HTTP/1.1 reader/writer
//! with strict limits ([`http`]), a sharded LRU ([`cache`]) keying
//! response bodies by `(kernel, scale, placement, model options)`,
//! sharded event loops feeding a bounded worker pool through two-stage
//! [`Handler`]s ([`server`], [`handlers`]), single-flight coalescing
//! of concurrent identical requests ([`singleflight`]), a multi-tenant
//! GPU-config registry ([`registry`]), and signal-driven graceful
//! shutdown ([`signal`]).
//!
//! The same response-body builders back the CLI's `--json` mode
//! ([`api`]), so `hms predict --json ...` and `POST /v1/predict` are
//! byte-identical by construction — asserted by the integration tests.

pub mod admission;
pub mod api;
pub mod cache;
pub mod conn;
pub mod handlers;
pub mod http;
pub mod metrics;
pub mod poller;
pub mod registry;
pub mod server;
pub mod signal;
pub mod singleflight;
pub mod wire;

pub use admission::{
    apply_cap, degradation_level, strategy_cap, BreakerState, CircuitBreaker, TokenBucket,
};
pub use api::{Advisor, ApiError, Effort, PredictQuery, RankQuery};
pub use cache::ShardedLru;
pub use handlers::{Ctx, Handler, Outcome, Response};
pub use metrics::{Metrics, Route};
pub use registry::{preset, ConfigRegistry, PRESET_NAMES};
pub use server::{ready_state, ReadyState, ServerConfig, ServerHandle};
#[allow(deprecated)]
pub use server::{spawn, ServeConfig};
pub use wire::{decode, Json, WireError};
