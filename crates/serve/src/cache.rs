//! A sharded, thread-safe LRU cache for the advisory server's hot path.
//!
//! Requests hash to one of a fixed set of shards (so concurrent lookups
//! for different keys rarely contend on the same lock), and each shard
//! is a classic O(1) LRU: a `HashMap` from key to slot index over an
//! intrusive doubly-linked recency list in a slab. The server keeps two
//! instances: the *prediction cache* — `(kernel, scale, placement,
//! model-options)` → encoded response body — and the *profile cache*
//! underneath it — `(kernel, scale)` → profiled sample — so a warm
//! repeat query touches neither the simulator nor the trace rewriter.
//!
//! Hashing uses `std::collections::hash_map::DefaultHasher` with the
//! default (fixed) keys, so shard assignment is deterministic within and
//! across processes.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

/// Index of the null slot (list terminator).
const NIL: usize = usize::MAX;

struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

struct Shard<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Node<K, V>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
}

impl<K: Hash + Eq + Clone, V: Clone> Shard<K, V> {
    fn new(capacity: usize) -> Self {
        Shard {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Detach slot `i` from the recency list.
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Push slot `i` at the head (most recently used).
    fn push_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn get(&mut self, key: &K) -> Option<V> {
        let &i = self.map.get(key)?;
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
        Some(self.slab[i].value.clone())
    }

    fn insert(&mut self, key: K, value: V) {
        if let Some(&i) = self.map.get(&key) {
            self.slab[i].value = value;
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return;
        }
        if self.map.len() >= self.capacity {
            // Evict the least recently used entry.
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.unlink(lru);
            let old = &self.slab[lru].key;
            self.map.remove(&old.clone());
            self.free.push(lru);
        }
        let node = Node {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.slab[i] = node;
                i
            }
            None => {
                self.slab.push(node);
                self.slab.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
    }
}

/// The sharded cache. `Clone`-returning by design: values are handed out
/// by value (wrap big ones in `Arc`), never by reference into the shard.
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedLru<K, V> {
    /// A cache holding at most (about) `entries` values across `shards`
    /// shards; each shard gets an equal slice of the budget (at least 1).
    pub fn new(entries: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = (entries / shards).max(1);
        ShardedLru {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        // High bits pick the shard; HashMap inside consumes the same
        // hash from bit 0 up, so the two stay independent enough.
        let i = (h.finish() >> 57) as usize % self.shards.len();
        &self.shards[i]
    }

    /// Look `key` up, promoting it to most-recently-used on a hit.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key).lock().expect("lru shard").get(key)
    }

    /// Insert (or refresh) `key`, evicting that shard's LRU entry if the
    /// shard is full.
    pub fn insert(&self, key: K, value: V) {
        self.shard(&key)
            .lock()
            .expect("lru shard")
            .insert(key, value)
    }

    /// Total entries currently cached (sums shard sizes; approximate
    /// under concurrent mutation).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("lru shard").map.len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_shard_evicts_lru_order() {
        let c: ShardedLru<u32, u32> = ShardedLru::new(3, 1);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(3, 30);
        // Touch 1 so 2 becomes the LRU.
        assert_eq!(c.get(&1), Some(10));
        c.insert(4, 40);
        assert_eq!(c.get(&2), None, "LRU entry must be evicted");
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), Some(30));
        assert_eq!(c.get(&4), Some(40));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn insert_refreshes_existing_key() {
        let c: ShardedLru<u32, u32> = ShardedLru::new(2, 1);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11); // refresh: 2 is now the LRU
        c.insert(3, 30);
        assert_eq!(c.get(&1), Some(11));
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&3), Some(30));
    }

    #[test]
    fn capacity_one_keeps_latest() {
        let c: ShardedLru<u32, u32> = ShardedLru::new(1, 1);
        for i in 0..10 {
            c.insert(i, i);
        }
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&9), Some(9));
    }

    #[test]
    fn eviction_reuses_slots() {
        let c: ShardedLru<u32, u32> = ShardedLru::new(4, 1);
        for i in 0..1000 {
            c.insert(i, i * 2);
        }
        let shard = c.shards[0].lock().unwrap();
        assert!(
            shard.slab.len() <= 5,
            "slab grew to {} slots for a 4-entry shard",
            shard.slab.len()
        );
    }

    #[test]
    fn sharding_spreads_keys() {
        let c: ShardedLru<u64, u64> = ShardedLru::new(1024, 8);
        for i in 0..512u64 {
            c.insert(i, i);
        }
        let occupied = c
            .shards
            .iter()
            .filter(|s| !s.lock().unwrap().map.is_empty())
            .count();
        assert!(occupied >= 6, "only {occupied}/8 shards used");
        for i in 0..512u64 {
            assert_eq!(c.get(&i), Some(i));
        }
    }

    #[test]
    fn concurrent_hammering_stays_consistent() {
        // 8 threads × 2k mixed ops on a small cache: every get must
        // return the value that key was inserted with (values encode
        // their key), len stays bounded, and nothing deadlocks.
        let c: Arc<ShardedLru<u64, u64>> = Arc::new(ShardedLru::new(64, 4));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for i in 0..2000u64 {
                        let key = (t * 7 + i) % 96;
                        if i % 3 == 0 {
                            c.insert(key, key * 1000);
                        } else if let Some(v) = c.get(&key) {
                            assert_eq!(v, key * 1000, "stale or torn value");
                        }
                    }
                });
            }
        });
        assert!(c.len() <= 64 + 4, "len {} exceeds capacity slack", c.len());
    }

    #[test]
    fn arc_values_share_storage() {
        let c: ShardedLru<u32, Arc<String>> = ShardedLru::new(8, 2);
        let v = Arc::new("body".to_string());
        c.insert(1, Arc::clone(&v));
        let got = c.get(&1).unwrap();
        assert!(Arc::ptr_eq(&v, &got));
    }
}
