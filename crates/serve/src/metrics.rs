//! Server observability: lock-free counters and latency histograms,
//! rendered in the Prometheus text exposition format at `GET /metrics`.
//!
//! Everything is a fixed-shape atomic — no allocation on the request
//! path — and rendering iterates in a fixed order, so the exposition is
//! deterministic modulo the counter values themselves. The metrics the
//! acceptance criteria lean on:
//!
//! * `hms_prediction_cache_{hits,misses}_total` and
//!   `hms_profile_cache_{hits,misses}_total` — a warm repeat query must
//!   hit the former without missing the latter;
//! * `hms_simulations_total` / `hms_predictions_computed_total` — must
//!   *not* advance on a warm hit (no re-simulation, no re-rewrite);
//! * `hms_engine_*` — cumulative [`EngineStats`] from every search the
//!   server actually ran.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use hms_core::EngineStats;

/// The routes the server distinguishes in its per-route metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    Predict,
    Advise,
    Search,
    Kernels,
    Metrics,
    Healthz,
    Readyz,
    Other,
}

impl Route {
    pub const ALL: [Route; 8] = [
        Route::Predict,
        Route::Advise,
        Route::Search,
        Route::Kernels,
        Route::Metrics,
        Route::Healthz,
        Route::Readyz,
        Route::Other,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Route::Predict => "predict",
            Route::Advise => "advise",
            Route::Search => "search",
            Route::Kernels => "kernels",
            Route::Metrics => "metrics",
            Route::Healthz => "healthz",
            Route::Readyz => "readyz",
            Route::Other => "other",
        }
    }

    fn index(self) -> usize {
        Route::ALL.iter().position(|r| *r == self).expect("in ALL")
    }
}

/// Status classes tracked per route (the exact codes the server emits).
const STATUSES: [u16; 10] = [200, 400, 404, 405, 408, 413, 429, 500, 503, 504];

/// Upper bounds (microseconds) of the latency histogram buckets, plus an
/// implicit `+Inf`. Spans cache-hit microseconds to full-scale
/// simulation seconds.
const BUCKET_US: [u64; 14] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 500_000, 1_000_000,
    5_000_000,
];

#[derive(Default)]
struct Histogram {
    buckets: [AtomicU64; BUCKET_US.len()],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Histogram {
    fn observe(&self, d: Duration) {
        let us = d.as_micros().min(u128::from(u64::MAX)) as u64;
        for (i, &ub) in BUCKET_US.iter().enumerate() {
            if us <= ub {
                self.buckets[i].fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }
}

/// Cumulative counters mirroring [`EngineStats`]'s deterministic fields.
#[derive(Default)]
struct EngineTotals {
    full_rewrites: AtomicU64,
    skeletons_built: AtomicU64,
    delta_cache_hits: AtomicU64,
    exact_fallbacks: AtomicU64,
    candidates_evaluated: AtomicU64,
    candidates_pruned: AtomicU64,
    candidates_visited: AtomicU64,
    skeleton_disk_hits: AtomicU64,
    skeleton_disk_misses: AtomicU64,
    skeleton_disk_writes: AtomicU64,
    skeleton_disk_tmp_swept: AtomicU64,
    batched_replays: AtomicU64,
    events_streamed: AtomicU64,
    /// Peak lane width over the server's lifetime (a high-water gauge:
    /// folded with `fetch_max`, matching [`EngineStats::merge`]).
    lane_width: AtomicU64,
    /// `f64::to_bits` of the most recent anytime search's reported gap
    /// upper bound (a gauge: last value wins, exact searches don't
    /// touch it).
    last_gap_bits: AtomicU64,
}

/// All server metrics. One instance per server, shared by `Arc`.
#[derive(Default)]
pub struct Metrics {
    requests: [AtomicU64; Route::ALL.len()],
    responses: [[AtomicU64; STATUSES.len()]; Route::ALL.len()],
    latency: [Histogram; Route::ALL.len()],
    pub prediction_cache_hits: AtomicU64,
    pub prediction_cache_misses: AtomicU64,
    pub search_cache_hits: AtomicU64,
    pub search_cache_misses: AtomicU64,
    pub profile_cache_hits: AtomicU64,
    pub profile_cache_misses: AtomicU64,
    /// Sample simulations actually run (profile-cache misses end here).
    pub simulations: AtomicU64,
    /// Predictions actually computed (prediction-cache misses end here).
    pub predictions_computed: AtomicU64,
    /// Requests refused with 503 because the accept queue was full.
    pub shed: AtomicU64,
    /// Requests refused with 504 because their deadline passed.
    pub deadline_exceeded: AtomicU64,
    /// Connections currently queued waiting for a worker.
    pub queue_depth: AtomicU64,
    /// Requests currently being handled by workers.
    pub inflight: AtomicU64,
    /// Readiness state as `/readyz` reports it: 0 = ready, 1 = degraded
    /// (shedding), 2 = draining (shutdown in progress).
    pub ready_state: AtomicU64,
    /// Requests that hit the cumulative read deadline (slowloris /
    /// stalled peers answered 408).
    pub read_timeouts: AtomicU64,
    /// Requests answered by joining another identical in-flight request
    /// (single-flight followers — they cost zero model work).
    pub coalesced_requests: AtomicU64,
    /// Cold requests that led a single-flight computation.
    pub singleflight_leaders: AtomicU64,
    /// Connections currently registered with the event loops.
    pub open_connections: AtomicU64,
    /// Requests refused with 429 by a tenant's token-bucket quota.
    pub admission_rejected: AtomicU64,
    /// Stalled compute slots the watchdog force-claimed (answered 504).
    pub watchdog_cancels: AtomicU64,
    /// Search responses served with a downgraded strategy (stamped
    /// `"degraded": true` on the wire).
    pub degraded_responses: AtomicU64,
    /// Current degradation-ladder level: 0 = normal, 1 = capped at beam
    /// search, 2 = capped at local search.
    pub degradation_level: AtomicU64,
    /// Circuit-breaker state of the most recently evaluated tenant:
    /// 0 = closed, 1 = half-open, 2 = open.
    pub breaker_state: AtomicU64,
    engine: EngineTotals,
}

impl Metrics {
    pub fn new() -> Self {
        Metrics::default()
    }

    pub fn on_request(&self, route: Route) {
        self.requests[route.index()].fetch_add(1, Ordering::Relaxed);
    }

    pub fn on_response(&self, route: Route, status: u16, latency: Duration) {
        if let Some(si) = STATUSES.iter().position(|&s| s == status) {
            self.responses[route.index()][si].fetch_add(1, Ordering::Relaxed);
        }
        self.latency[route.index()].observe(latency);
    }

    /// Fold one search's engine counters into the cumulative totals
    /// (deterministic fields only — wall-clock nanos stay out of the
    /// exposition so warm-cache assertions can compare exact values).
    pub fn on_engine_stats(&self, s: &EngineStats) {
        let e = &self.engine;
        e.full_rewrites
            .fetch_add(s.full_rewrites, Ordering::Relaxed);
        e.skeletons_built
            .fetch_add(s.skeletons_built, Ordering::Relaxed);
        e.delta_cache_hits
            .fetch_add(s.delta_cache_hits, Ordering::Relaxed);
        e.exact_fallbacks
            .fetch_add(s.exact_fallbacks, Ordering::Relaxed);
        e.candidates_evaluated
            .fetch_add(s.candidates_evaluated, Ordering::Relaxed);
        e.candidates_pruned
            .fetch_add(s.candidates_pruned, Ordering::Relaxed);
        e.skeleton_disk_hits
            .fetch_add(s.skeleton_disk_hits, Ordering::Relaxed);
        e.skeleton_disk_misses
            .fetch_add(s.skeleton_disk_misses, Ordering::Relaxed);
        e.skeleton_disk_writes
            .fetch_add(s.skeleton_disk_writes, Ordering::Relaxed);
        e.skeleton_disk_tmp_swept
            .fetch_add(s.skeleton_disk_tmp_swept, Ordering::Relaxed);
        e.batched_replays
            .fetch_add(s.batched_replays, Ordering::Relaxed);
        e.events_streamed
            .fetch_add(s.events_streamed, Ordering::Relaxed);
        e.lane_width.fetch_max(s.lane_width, Ordering::Relaxed);
        if s.anytime() {
            e.candidates_visited
                .fetch_add(s.candidates_visited, Ordering::Relaxed);
            e.last_gap_bits
                .store(s.gap_upper_bound.to_bits(), Ordering::Relaxed);
        }
    }

    /// Render the Prometheus text exposition.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(4096);
        let g = |out: &mut String, name: &str, help: &str, kind: &str| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
        };

        g(
            &mut out,
            "hms_requests_total",
            "Requests received, by route.",
            "counter",
        );
        for r in Route::ALL {
            out.push_str(&format!(
                "hms_requests_total{{route=\"{}\"}} {}\n",
                r.label(),
                self.requests[r.index()].load(Ordering::Relaxed)
            ));
        }

        g(
            &mut out,
            "hms_responses_total",
            "Responses sent, by route and status.",
            "counter",
        );
        for r in Route::ALL {
            for (si, &status) in STATUSES.iter().enumerate() {
                let n = self.responses[r.index()][si].load(Ordering::Relaxed);
                if n > 0 {
                    out.push_str(&format!(
                        "hms_responses_total{{route=\"{}\",status=\"{status}\"}} {n}\n",
                        r.label()
                    ));
                }
            }
        }

        g(
            &mut out,
            "hms_request_duration_seconds",
            "Request handling latency.",
            "histogram",
        );
        for r in Route::ALL {
            let h = &self.latency[r.index()];
            let count = h.count.load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            let mut cumulative = 0u64;
            for (i, &ub) in BUCKET_US.iter().enumerate() {
                cumulative += h.buckets[i].load(Ordering::Relaxed);
                out.push_str(&format!(
                    "hms_request_duration_seconds_bucket{{route=\"{}\",le=\"{}\"}} {cumulative}\n",
                    r.label(),
                    ub as f64 / 1e6,
                ));
            }
            out.push_str(&format!(
                "hms_request_duration_seconds_bucket{{route=\"{}\",le=\"+Inf\"}} {count}\n",
                r.label()
            ));
            out.push_str(&format!(
                "hms_request_duration_seconds_sum{{route=\"{}\"}} {}\n",
                r.label(),
                h.sum_us.load(Ordering::Relaxed) as f64 / 1e6,
            ));
            out.push_str(&format!(
                "hms_request_duration_seconds_count{{route=\"{}\"}} {count}\n",
                r.label()
            ));
        }

        let counters: [(&str, &str, &AtomicU64); 18] = [
            (
                "hms_prediction_cache_hits_total",
                "Predict queries answered from the prediction cache.",
                &self.prediction_cache_hits,
            ),
            (
                "hms_prediction_cache_misses_total",
                "Predict queries that had to run the model.",
                &self.prediction_cache_misses,
            ),
            (
                "hms_search_cache_hits_total",
                "Advise/search queries answered from the result cache.",
                &self.search_cache_hits,
            ),
            (
                "hms_search_cache_misses_total",
                "Advise/search queries that had to run the engine.",
                &self.search_cache_misses,
            ),
            (
                "hms_profile_cache_hits_total",
                "Sample profiles reused from cache.",
                &self.profile_cache_hits,
            ),
            (
                "hms_profile_cache_misses_total",
                "Sample profiles that had to be simulated.",
                &self.profile_cache_misses,
            ),
            (
                "hms_simulations_total",
                "Sample simulations actually run.",
                &self.simulations,
            ),
            (
                "hms_predictions_computed_total",
                "Predictions actually computed (cache misses).",
                &self.predictions_computed,
            ),
            (
                "hms_shed_total",
                "Requests refused with 503 because the queue was full.",
                &self.shed,
            ),
            (
                "hms_deadline_exceeded_total",
                "Requests refused with 504 past their deadline.",
                &self.deadline_exceeded,
            ),
            (
                "hms_read_timeouts_total",
                "Requests answered 408: not fully received within the read deadline.",
                &self.read_timeouts,
            ),
            (
                "hms_coalesced_requests_total",
                "Requests answered by joining an identical in-flight computation.",
                &self.coalesced_requests,
            ),
            (
                "hms_singleflight_leaders_total",
                "Cold requests that led a single-flight computation.",
                &self.singleflight_leaders,
            ),
            (
                "hms_admission_rejected_total",
                "Requests refused with 429 by a tenant quota.",
                &self.admission_rejected,
            ),
            (
                "hms_watchdog_cancels_total",
                "Stalled compute slots force-claimed by the pool watchdog.",
                &self.watchdog_cancels,
            ),
            (
                "hms_degraded_responses_total",
                "Search responses served with a ladder-downgraded strategy.",
                &self.degraded_responses,
            ),
            (
                "hms_engine_full_rewrites_total",
                "Whole-trace rewrite+analyze runs across all searches.",
                &self.engine.full_rewrites,
            ),
            (
                "hms_engine_delta_cache_hits_total",
                "Candidates composed from memoized deltas.",
                &self.engine.delta_cache_hits,
            ),
        ];
        for (name, help, v) in counters {
            g(&mut out, name, help, "counter");
            out.push_str(&format!("{name} {}\n", v.load(Ordering::Relaxed)));
        }

        let more_engine: [(&str, &str, &AtomicU64); 11] = [
            (
                "hms_engine_skeletons_built_total",
                "Distinct walk skeletons built.",
                &self.engine.skeletons_built,
            ),
            (
                "hms_engine_exact_fallbacks_total",
                "Candidates that fell back to the exact path.",
                &self.engine.exact_fallbacks,
            ),
            (
                "hms_engine_candidates_evaluated_total",
                "Candidates evaluated by the model.",
                &self.engine.candidates_evaluated,
            ),
            (
                "hms_engine_candidates_pruned_total",
                "Candidates skipped by branch-and-bound (estimate).",
                &self.engine.candidates_pruned,
            ),
            (
                "hms_engine_candidates_visited_total",
                "Partial assignments scored by anytime strategies.",
                &self.engine.candidates_visited,
            ),
            (
                "hms_engine_skeleton_disk_hits_total",
                "Skeletons loaded from the persistent cache.",
                &self.engine.skeleton_disk_hits,
            ),
            (
                "hms_engine_skeleton_disk_misses_total",
                "Persistent-cache probes that fell back to a rebuild.",
                &self.engine.skeleton_disk_misses,
            ),
            (
                "hms_engine_skeleton_disk_writes_total",
                "Healthy skeletons persisted to disk.",
                &self.engine.skeleton_disk_writes,
            ),
            (
                "hms_engine_skeleton_tmp_swept_total",
                "Stale skeleton temp files swept at cache open.",
                &self.engine.skeleton_disk_tmp_swept,
            ),
            (
                "hms_engine_batched_replays_total",
                "Event-major lane-batched replay passes.",
                &self.engine.batched_replays,
            ),
            (
                "hms_engine_events_streamed_total",
                "Skeleton events streamed by batched replays.",
                &self.engine.events_streamed,
            ),
        ];
        for (name, help, v) in more_engine {
            g(&mut out, name, help, "counter");
            out.push_str(&format!("{name} {}\n", v.load(Ordering::Relaxed)));
        }

        let gauges: [(&str, &str, &AtomicU64); 7] = [
            (
                "hms_queue_depth",
                "Jobs waiting for a worker.",
                &self.queue_depth,
            ),
            (
                "hms_open_connections",
                "Connections currently registered with the event loops.",
                &self.open_connections,
            ),
            (
                "hms_inflight_requests",
                "Requests currently being handled.",
                &self.inflight,
            ),
            (
                "hms_ready_state",
                "Readiness: 0=ready, 1=degraded (shedding), 2=draining.",
                &self.ready_state,
            ),
            (
                "hms_degradation_level",
                "Degradation ladder: 0=normal, 1=beam cap, 2=local-search cap.",
                &self.degradation_level,
            ),
            (
                "hms_breaker_state",
                "Circuit breaker: 0=closed, 1=half-open, 2=open.",
                &self.breaker_state,
            ),
            (
                "hms_engine_lane_width",
                "Peak replay lane width observed across all searches.",
                &self.engine.lane_width,
            ),
        ];
        for (name, help, v) in gauges {
            g(&mut out, name, help, "gauge");
            out.push_str(&format!("{name} {}\n", v.load(Ordering::Relaxed)));
        }
        g(
            &mut out,
            "hms_engine_gap_upper_bound",
            "Reported optimality-gap upper bound of the most recent anytime search.",
            "gauge",
        );
        out.push_str(&format!(
            "hms_engine_gap_upper_bound {}\n",
            f64::from_bits(self.engine.last_gap_bits.load(Ordering::Relaxed))
        ));
        out
    }

    /// Parse a single counter value back out of a rendered exposition —
    /// test/bench helper, not a full Prometheus parser. Labelled series
    /// need the full `name{labels}` string.
    pub fn scrape_counter(exposition: &str, series: &str) -> Option<f64> {
        exposition.lines().find_map(|l| {
            let rest = l.strip_prefix(series)?;
            let rest = rest.strip_prefix(' ')?;
            rest.trim().parse().ok()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_core_series() {
        let m = Metrics::new();
        m.on_request(Route::Predict);
        m.on_response(Route::Predict, 200, Duration::from_micros(120));
        m.prediction_cache_hits.fetch_add(3, Ordering::Relaxed);
        let text = m.render();
        assert!(text.contains("hms_requests_total{route=\"predict\"} 1"));
        assert!(text.contains("hms_responses_total{route=\"predict\",status=\"200\"} 1"));
        assert!(text.contains("hms_prediction_cache_hits_total 3"));
        assert!(
            text.contains("hms_request_duration_seconds_bucket{route=\"predict\",le=\"+Inf\"} 1")
        );
        assert!(text.contains("# TYPE hms_request_duration_seconds histogram"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = Metrics::new();
        m.on_response(Route::Search, 200, Duration::from_micros(60));
        m.on_response(Route::Search, 200, Duration::from_micros(60_000));
        let text = m.render();
        // 60 us lands in le=0.0001; both land in le=0.1.
        assert!(
            text.contains("hms_request_duration_seconds_bucket{route=\"search\",le=\"0.0001\"} 1")
        );
        assert!(text.contains("hms_request_duration_seconds_bucket{route=\"search\",le=\"0.1\"} 2"));
        assert!(text.contains("hms_request_duration_seconds_count{route=\"search\"} 2"));
    }

    #[test]
    fn engine_stats_accumulate() {
        let m = Metrics::new();
        let s = EngineStats {
            full_rewrites: 4,
            delta_cache_hits: 12,
            candidates_evaluated: 16,
            ..EngineStats::default()
        };
        m.on_engine_stats(&s);
        m.on_engine_stats(&s);
        let text = m.render();
        assert!(text.contains("hms_engine_full_rewrites_total 8"));
        assert!(text.contains("hms_engine_delta_cache_hits_total 24"));
        assert!(text.contains("hms_engine_candidates_evaluated_total 32"));
    }

    #[test]
    fn batched_replay_counters_accumulate_and_lane_width_is_peak() {
        let m = Metrics::new();
        let wide = EngineStats {
            batched_replays: 3,
            lane_width: 16,
            events_streamed: 900,
            ..EngineStats::default()
        };
        let narrow = EngineStats {
            batched_replays: 1,
            lane_width: 2,
            events_streamed: 100,
            ..EngineStats::default()
        };
        m.on_engine_stats(&wide);
        m.on_engine_stats(&narrow);
        let text = m.render();
        assert!(text.contains("hms_engine_batched_replays_total 4"));
        assert!(text.contains("hms_engine_events_streamed_total 1000"));
        // High-water gauge: the narrower follow-up search must not
        // lower it.
        assert!(text.contains("hms_engine_lane_width 16"));
        assert!(text.contains("# TYPE hms_engine_lane_width gauge"));
    }

    #[test]
    fn anytime_stats_feed_visited_counter_and_gap_gauge() {
        let m = Metrics::new();
        // Exact searches leave both series untouched.
        let exact = EngineStats {
            strategy: "exhaustive",
            candidates_visited: 99,
            gap_upper_bound: 0.5,
            ..EngineStats::default()
        };
        m.on_engine_stats(&exact);
        let text = m.render();
        assert!(text.contains("hms_engine_candidates_visited_total 0"));
        assert!(text.contains("hms_engine_gap_upper_bound 0\n"));
        // Anytime searches accumulate visits; the gauge is last-wins.
        let beam = EngineStats {
            strategy: "beam",
            candidates_visited: 10,
            gap_upper_bound: 0.25,
            ..EngineStats::default()
        };
        m.on_engine_stats(&beam);
        m.on_engine_stats(&beam);
        let text = m.render();
        assert!(text.contains("hms_engine_candidates_visited_total 20"));
        assert_eq!(
            Metrics::scrape_counter(&text, "hms_engine_gap_upper_bound"),
            Some(0.25)
        );
    }

    #[test]
    fn scrape_counter_reads_back() {
        let m = Metrics::new();
        m.simulations.fetch_add(7, Ordering::Relaxed);
        m.on_request(Route::Advise);
        let text = m.render();
        assert_eq!(
            Metrics::scrape_counter(&text, "hms_simulations_total"),
            Some(7.0)
        );
        assert_eq!(
            Metrics::scrape_counter(&text, "hms_requests_total{route=\"advise\"}"),
            Some(1.0)
        );
        assert_eq!(Metrics::scrape_counter(&text, "hms_nope"), None);
    }
}
