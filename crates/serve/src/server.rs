//! The event-driven placement-advisory server (DESIGN.md §13).
//!
//! Architecture:
//!
//! * **shard event loops** — each shard owns a nonblocking clone of the
//!   listener and drives hundreds of connections with a `poll(2)`-based
//!   readiness loop ([`crate::poller`]): accept, read, incremental
//!   HTTP parse ([`crate::conn`]), route. Warm requests — cache hits,
//!   probes, metrics — are answered *inline on the loop thread*; only
//!   cold model work leaves it;
//! * **a bounded worker pool** — cold requests become jobs in a bounded
//!   queue. When pending jobs reach `queue_depth`, new connections are
//!   shed at accept with `503`, so a saturated server degrades
//!   predictably instead of queueing without bound;
//! * **single-flight coalescing** — concurrent byte-identical cold
//!   requests share one computation: the first becomes the leader (one
//!   job), the rest park as followers and are answered from the
//!   leader's response ([`crate::singleflight`]). A thundering herd of
//!   N identical searches costs one engine run, visible as
//!   `hms_coalesced_requests_total`;
//! * **multi-tenant registry** — requests carry an optional `config`
//!   member naming a GPU configuration ([`crate::registry`]); each
//!   tenant gets its own advisor and response caches, so two tenants
//!   can never serve each other's bytes;
//! * **deadlines** — per-request (`504` before any model stage that
//!   would finish past the deadline) and cumulative read
//!   (slowloris peers answered `408` by the loop's sweep);
//! * **graceful shutdown** — a flag flipped by
//!   [`ServerHandle::shutdown`] or SIGINT/SIGTERM (see
//!   [`crate::signal`]). Shards stop accepting, in-flight jobs drain
//!   (answered `connection: close`), then everything joins and the
//!   port closes.
//!
//! The endpoint logic itself lives behind the [`crate::handlers`]
//! two-stage [`Handler`] trait; this module is the machinery that
//! schedules it.

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use hms_core::{ModelOptions, SearchStrategy};
use hms_kernels::Scale;
use hms_trace::KernelTrace;
use hms_types::{MemorySpace, PlacementMap};

use crate::admission::{degradation_level, BreakerState, CircuitBreaker, TokenBucket};
use crate::api::{named_placement, Advisor, PredictQuery};
use crate::cache::ShardedLru;
use crate::conn::{Conn, FillResult};
use crate::handlers::{self, Ctx, Handler, Outcome, Response};
use crate::http::{write_response, HttpError, Request};
use crate::metrics::{Metrics, Route};
use crate::poller::{Interest, Poller, Waker};
use crate::registry::ConfigRegistry;
use crate::singleflight::{FlightKey, FlightTable, Join};
use crate::wire::v1::error_body;

/// How the event loops pace themselves when nothing is ready: the tick
/// bounds slowloris-sweep granularity and shutdown latency.
const POLL_TICK: Duration = Duration::from_millis(25);

/// Server tunables — a builder mirrored by `hms serve`'s flags.
///
/// ```no_run
/// use hms_serve::{registry::ConfigRegistry, server::ServerConfig, Advisor};
/// # fn advisor() -> Advisor { unimplemented!() }
/// let handle = ServerConfig::new()
///     .bind("127.0.0.1:0")
///     .workers(2)
///     .deadline(std::time::Duration::from_secs(5))
///     .spawn(ConfigRegistry::new("k80", advisor()))
///     .unwrap();
/// println!("listening on {}", handle.addr());
/// ```
#[derive(Clone)]
pub struct ServerConfig {
    bind: String,
    workers: usize,
    shards: usize,
    cache_entries: usize,
    deadline: Duration,
    queue_depth: usize,
    read_deadline: Duration,
    coalescing: bool,
    quota: Option<(u64, u64)>,
    breaker_failures: u32,
    breaker_cooldown: Duration,
    watchdog_interval: Duration,
    stall_timeout: Option<Duration>,
    routes: Vec<(String, String, Arc<dyn Handler>)>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            bind: "127.0.0.1:0".into(),
            workers: 0,
            shards: 0,
            cache_entries: 4096,
            deadline: Duration::from_millis(10_000),
            queue_depth: 128,
            read_deadline: Duration::from_millis(10_000),
            coalescing: true,
            quota: None,
            breaker_failures: 5,
            breaker_cooldown: Duration::from_millis(500),
            watchdog_interval: Duration::from_millis(100),
            stall_timeout: None,
            routes: Vec::new(),
        }
    }
}

impl ServerConfig {
    pub fn new() -> ServerConfig {
        ServerConfig::default()
    }

    /// Bind address; port 0 picks an ephemeral port (returned by
    /// [`ServerHandle::addr`]).
    pub fn bind(mut self, addr: impl Into<String>) -> Self {
        self.bind = addr.into();
        self
    }

    /// Worker threads for cold model work (0 = one per core, min 2).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Event-loop shards, each with its own accept loop (0 = auto: one
    /// shard per ~8 cores — a single poll loop saturates a small
    /// machine, extra shards only pay off when accept itself is hot).
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Total response-cache entries, split across tenants.
    pub fn cache_entries(mut self, n: usize) -> Self {
        self.cache_entries = n;
        self
    }

    /// Per-request deadline. Queries that can't start (or reach their
    /// next model stage) in time are refused with 504.
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = d;
        self
    }

    /// Pending cold jobs before new connections are shed with 503 at
    /// accept. 0 sheds everything (useful for tests).
    pub fn queue_depth(mut self, n: usize) -> Self {
        self.queue_depth = n;
        self
    }

    /// Cumulative budget for *receiving* one request, measured from its
    /// first byte; past it the request is answered 408 and the
    /// connection closed (slowloris defense).
    pub fn read_deadline(mut self, d: Duration) -> Self {
        self.read_deadline = d;
        self
    }

    /// Single-flight coalescing of identical concurrent cold requests
    /// (on by default; off makes every request compute independently).
    pub fn coalescing(mut self, on: bool) -> Self {
        self.coalescing = on;
        self
    }

    /// Per-tenant token-bucket quota: `burst` requests of headroom,
    /// refilled at `per_sec` requests per second. Out-of-quota cold
    /// requests are refused with 429 before any model work. Default:
    /// no quota.
    pub fn quota(mut self, burst: u64, per_sec: u64) -> Self {
        self.quota = Some((burst, per_sec));
        self
    }

    /// Per-tenant circuit breaker: `failures` consecutive server-side
    /// failures (5xx, watchdog kills) open it; `cooldown` later it goes
    /// half-open. An open breaker never rejects — it forces searches
    /// down the degradation ladder instead.
    pub fn breaker(mut self, failures: u32, cooldown: Duration) -> Self {
        self.breaker_failures = failures;
        self.breaker_cooldown = cooldown;
        self
    }

    /// How often the pool watchdog sweeps for stalled compute slots.
    pub fn watchdog_interval(mut self, d: Duration) -> Self {
        self.watchdog_interval = d;
        self
    }

    /// How long a compute slot may run before the watchdog intervenes:
    /// past `d` it raises the slot's cooperative cancel flag (the search
    /// returns best-so-far, flagged partial); past `2 * d` it
    /// force-claims the slot, answers its waiters 504, and spawns a
    /// replacement worker. Defaults to twice the request deadline plus
    /// 250 ms of grace: a deadline-honoring search legitimately runs
    /// right up to the deadline plus encode overhead, and only jobs
    /// that badly overshoot it are stalled.
    pub fn stall_timeout(mut self, d: Duration) -> Self {
        self.stall_timeout = Some(d);
        self
    }

    /// Mount a custom [`Handler`] at `method path` alongside the
    /// built-in advisory endpoints (counted under the `other` route
    /// label). Built-ins win ties.
    pub fn route(
        mut self,
        method: impl Into<String>,
        path: impl Into<String>,
        handler: Arc<dyn Handler>,
    ) -> Self {
        self.routes.push((method.into(), path.into(), handler));
        self
    }

    /// Bind, spawn the shard event loops and worker pool, and return
    /// immediately. Tenant 0 of `registry` is the default config.
    pub fn spawn(self, registry: ConfigRegistry) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&self.bind)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let avail = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2);
        let workers = if self.workers == 0 {
            avail.max(2)
        } else {
            self.workers
        };
        let shards = if self.shards == 0 {
            (avail / 8).clamp(1, 4)
        } else {
            self.shards
        };
        let n_tenants = registry.len();
        let per_cache = (self.cache_entries.max(2) / (2 * n_tenants)).max(2);
        let tenants: Vec<Tenant> = (0..n_tenants)
            .map(|i| Tenant {
                advisor: Arc::clone(registry.advisor(i)),
                pred_cache: ShardedLru::new(per_cache, 8),
                rank_cache: ShardedLru::new(per_cache, 8),
            })
            .collect();
        let mut inboxes = Vec::with_capacity(shards);
        for _ in 0..shards {
            inboxes.push(Inbox {
                completions: Mutex::new(Vec::new()),
                waker: Waker::new()?,
            });
        }
        let admission: Vec<TenantAdmission> = (0..n_tenants)
            .map(|_| TenantAdmission {
                bucket: self
                    .quota
                    .map(|(burst, per_sec)| TokenBucket::new(burst, per_sec)),
                breaker: CircuitBreaker::new(self.breaker_failures, self.breaker_cooldown),
            })
            .collect();
        let shared = Arc::new(Shared {
            registry,
            tenants,
            metrics: Arc::new(Metrics::new()),
            raw_cache: ShardedLru::new(self.cache_entries.max(2), 8),
            jobs: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
            jobs_pending: AtomicU64::new(0),
            flights: FlightTable::new(),
            coalescing: self.coalescing,
            shutdown: AtomicBool::new(false),
            deadline: self.deadline,
            read_deadline: self.read_deadline,
            queue_depth: self.queue_depth,
            inboxes,
            router: Router::new(self.routes),
            admission,
            skew_millis: AtomicU64::new(0),
            watchdog: Watchdog::default(),
            stall_timeout: self
                .stall_timeout
                .unwrap_or(self.deadline * 2 + Duration::from_millis(250)),
            workers,
        });
        let mut threads = Vec::with_capacity(shards + workers);
        // Thread spawning can fail (resource exhaustion); surface it as
        // the io::Result the caller already handles instead of
        // panicking, after unwinding whatever was spawned.
        let fail = |shared: &Arc<Shared>, threads: Vec<std::thread::JoinHandle<()>>, e| {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.job_ready.notify_all();
            for inbox in &shared.inboxes {
                inbox.waker.wake();
            }
            for t in threads {
                let _ = t.join();
            }
            Err(e)
        };
        for i in 0..shards {
            let l = match listener.try_clone() {
                Ok(l) => l,
                Err(e) => return fail(&shared, threads, e),
            };
            let s = Arc::clone(&shared);
            match std::thread::Builder::new()
                .name(format!("hms-shard-{i}"))
                .spawn(move || shard_loop(i, l, s))
            {
                Ok(t) => threads.push(t),
                Err(e) => return fail(&shared, threads, e),
            }
        }
        for i in 0..workers {
            let s = Arc::clone(&shared);
            match std::thread::Builder::new()
                .name(format!("hms-worker-{i}"))
                .spawn(move || worker_loop(s))
            {
                Ok(t) => threads.push(t),
                Err(e) => return fail(&shared, threads, e),
            }
        }
        {
            let s = Arc::clone(&shared);
            let interval = self.watchdog_interval;
            match std::thread::Builder::new()
                .name("hms-watchdog".into())
                .spawn(move || watchdog_loop(s, interval))
            {
                Ok(t) => threads.push(t),
                Err(e) => return fail(&shared, threads, e),
            }
        }
        Ok(ServerHandle {
            addr,
            shared,
            threads,
        })
    }
}

/// Server tunables for the original single-advisor entry point.
#[deprecated(note = "use `ServerConfig` (builder) with a `ConfigRegistry` instead")]
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (printed/returned).
    pub addr: String,
    /// Worker threads (0 = one per core, minimum 2).
    pub threads: usize,
    /// Total entries across the prediction and search caches.
    pub cache_entries: usize,
    /// Per-request deadline.
    pub deadline: Duration,
    /// Pending cold jobs before new connections are shed with 503.
    /// 0 sheds everything (useful for tests).
    pub queue_depth: usize,
    /// Cumulative budget for receiving one request (slowloris defense).
    pub read_deadline: Duration,
}

#[allow(deprecated)]
impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            threads: 0,
            cache_entries: 4096,
            deadline: Duration::from_millis(10_000),
            queue_depth: 128,
            read_deadline: Duration::from_millis(10_000),
        }
    }
}

/// Original entry point: one advisor, serving as the only tenant.
#[deprecated(note = "use `ServerConfig::spawn` with a `ConfigRegistry` instead")]
#[allow(deprecated)]
pub fn spawn(cfg: ServeConfig, advisor: Advisor) -> std::io::Result<ServerHandle> {
    ServerConfig::new()
        .bind(cfg.addr)
        .workers(cfg.threads)
        .cache_entries(cfg.cache_entries)
        .deadline(cfg.deadline)
        .queue_depth(cfg.queue_depth)
        .read_deadline(cfg.read_deadline)
        .spawn(ConfigRegistry::new("default", advisor))
}

/// What `/readyz` reports (and `hms_ready_state` exposes as a gauge):
/// liveness (`/healthz`) says the process can answer; readiness says it
/// is worth sending real traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadyState {
    /// Accepting and serving normally.
    Ready,
    /// Alive but shedding: the job queue is at capacity, new
    /// connections are being refused with 503.
    Degraded,
    /// Shutdown requested: draining in-flight work, not accepting.
    Draining,
}

impl ReadyState {
    /// The numeric gauge value for `hms_ready_state`.
    pub fn gauge(self) -> u64 {
        match self {
            ReadyState::Ready => 0,
            ReadyState::Degraded => 1,
            ReadyState::Draining => 2,
        }
    }
}

/// Pure readiness classification, separated from the server so tests
/// can pin the mapping: draining wins over degraded, and a queue at (or
/// over, including a zero-depth queue) capacity is degraded.
pub fn ready_state(shutdown: bool, queue_len: usize, queue_depth: usize) -> ReadyState {
    if shutdown {
        ReadyState::Draining
    } else if queue_len >= queue_depth {
        ReadyState::Degraded
    } else {
        ReadyState::Ready
    }
}

/// Prediction-cache key: everything that can change the response bytes
/// (the tenant is implied — each tenant has its own cache).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct PredKey {
    kernel: String,
    scale: Scale,
    placement: Vec<(String, MemorySpace)>,
    options: ModelOptions,
    trained: bool,
}

impl PredKey {
    /// Key on the *resolved* placement so `moves` and an equivalent
    /// `placement` object hit the same entry.
    pub(crate) fn new(
        advisor: &Advisor,
        q: &PredictQuery,
        kt: &KernelTrace,
        resolved: &PlacementMap,
    ) -> PredKey {
        PredKey {
            kernel: q.kernel.clone(),
            scale: q.scale,
            placement: named_placement(kt, resolved).0,
            options: advisor.predictor.options,
            trained: advisor.predictor.overlap.is_trained(),
        }
    }
}

/// Search-cache key: the full rank query plus which endpoint shape
/// (advise has no stats block) — threads excluded, results are
/// thread-invariant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct RankKey {
    pub(crate) kernel: String,
    pub(crate) scale: Scale,
    pub(crate) top: usize,
    /// The *resolved* strategy, knobs included (beam width, local-search
    /// seed) — resolution happens at the parse edge, so an invalid combo
    /// 400s before it can ever touch this key.
    pub(crate) strategy: SearchStrategy,
    pub(crate) include_stats: bool,
    pub(crate) options: ModelOptions,
    pub(crate) trained: bool,
}

/// One tenant: an advisor plus its private response caches. Cache keys
/// never cross tenants because the caches themselves don't.
pub(crate) struct Tenant {
    pub(crate) advisor: Arc<Advisor>,
    pub(crate) pred_cache: ShardedLru<PredKey, Arc<String>>,
    pub(crate) rank_cache: ShardedLru<RankKey, Arc<String>>,
}

/// Who gets a completed job's response, and where they're parked.
/// The `gen` check makes a reused connection slot immune to stale
/// completions for its previous occupant.
#[derive(Clone)]
pub(crate) struct Waiter {
    shard: usize,
    conn: usize,
    gen: u64,
    route: Route,
    wants_close: bool,
    arrived: Instant,
}

/// A finished response on its way back to a shard's event loop.
struct Completion {
    waiter: Waiter,
    status: u16,
    content_type: &'static str,
    body: Arc<String>,
}

/// Per-shard channel from the worker pool back to the event loop.
struct Inbox {
    completions: Mutex<Vec<Completion>>,
    waker: Waker,
}

/// One cold request queued for the worker pool.
struct Job {
    handler: Arc<dyn Handler>,
    req: Request,
    /// Present when this job leads a single-flight (its completion
    /// answers every parked follower).
    key: Option<FlightKey>,
    waiter: Waiter,
}

enum RouteMatch<'a> {
    Found(&'a RouteEntry),
    MethodNotAllowed(Route),
    NotFound,
}

struct RouteEntry {
    method: &'static str,
    path: &'static str,
    route: Route,
    handler: Arc<dyn Handler>,
    /// Custom mount (owned strings) — checked after built-ins.
    custom: Option<(String, String)>,
}

struct Router {
    entries: Vec<RouteEntry>,
}

impl Router {
    fn new(custom: Vec<(String, String, Arc<dyn Handler>)>) -> Router {
        let builtin = |method, path, route, handler: Arc<dyn Handler>| RouteEntry {
            method,
            path,
            route,
            handler,
            custom: None,
        };
        let mut entries = vec![
            builtin(
                "GET",
                "/healthz",
                Route::Healthz,
                Arc::new(handlers::Healthz),
            ),
            builtin("GET", "/readyz", Route::Readyz, Arc::new(handlers::Readyz)),
            builtin(
                "GET",
                "/metrics",
                Route::Metrics,
                Arc::new(handlers::MetricsEndpoint),
            ),
            builtin(
                "GET",
                "/v1/kernels",
                Route::Kernels,
                Arc::new(handlers::Kernels),
            ),
            builtin(
                "POST",
                "/v1/predict",
                Route::Predict,
                Arc::new(handlers::Predict),
            ),
            builtin(
                "POST",
                "/v1/advise",
                Route::Advise,
                Arc::new(handlers::Rank { search: false }),
            ),
            builtin(
                "POST",
                "/v1/search",
                Route::Search,
                Arc::new(handlers::Rank { search: true }),
            ),
        ];
        for (method, path, handler) in custom {
            entries.push(RouteEntry {
                method: "",
                path: "",
                route: Route::Other,
                handler,
                custom: Some((method, path)),
            });
        }
        Router { entries }
    }

    fn find(&self, method: &str, path: &str) -> RouteMatch<'_> {
        let mut path_hit = None;
        for e in &self.entries {
            let (m, p) = match &e.custom {
                Some((m, p)) => (m.as_str(), p.as_str()),
                None => (e.method, e.path),
            };
            if p == path {
                if m == method {
                    return RouteMatch::Found(e);
                }
                path_hit = Some(e.route);
            }
        }
        match path_hit {
            Some(route) => RouteMatch::MethodNotAllowed(route),
            None => RouteMatch::NotFound,
        }
    }
}

/// Per-tenant admission state: the optional request quota plus the
/// circuit breaker feeding the degradation ladder.
pub(crate) struct TenantAdmission {
    pub(crate) bucket: Option<TokenBucket>,
    pub(crate) breaker: CircuitBreaker,
}

/// One registered compute slot the watchdog is watching.
struct ActiveSlot {
    started: Instant,
    /// Cooperative cancel: the search checks this at batch boundaries.
    cancel: Arc<AtomicBool>,
    /// Who answers the waiters — worker and watchdog race on a CAS;
    /// exactly one side wins and delivers.
    claimed: Arc<AtomicBool>,
    key: Option<FlightKey>,
    waiter: Waiter,
}

/// The pool watchdog's slot registry. Workers register before running a
/// handler's compute stage and deregister after; the sweep cancels (and
/// eventually force-claims) anything that overstays.
#[derive(Default)]
pub(crate) struct Watchdog {
    slots: Mutex<HashMap<u64, ActiveSlot>>,
    next_id: AtomicU64,
    /// Replacement workers spawned for wedged slots — capped at the
    /// configured pool size so a pathological storm can't fork-bomb.
    replacements: AtomicU64,
}

impl Watchdog {
    fn lock(&self) -> MutexGuard<'_, HashMap<u64, ActiveSlot>> {
        self.slots
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn register(&self, slot: ActiveSlot) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.lock().insert(id, slot);
        id
    }

    fn deregister(&self, id: u64) {
        self.lock().remove(&id);
    }
}

/// Everything the shards, workers, and handle share.
pub(crate) struct Shared {
    pub(crate) registry: ConfigRegistry,
    pub(crate) tenants: Vec<Tenant>,
    pub(crate) metrics: Arc<Metrics>,
    /// Whole-request memo: exact `(target, body)` bytes → response
    /// body, for deterministic 200s. The warmest possible fast path —
    /// no JSON parse, no placement resolution.
    pub(crate) raw_cache: ShardedLru<FlightKey, Arc<String>>,
    jobs: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
    /// Mirror of the job-queue length, readable without the lock (the
    /// accept path's shed check and `/readyz`).
    jobs_pending: AtomicU64,
    flights: FlightTable<Waiter>,
    coalescing: bool,
    shutdown: AtomicBool,
    pub(crate) deadline: Duration,
    read_deadline: Duration,
    queue_depth: usize,
    inboxes: Vec<Inbox>,
    router: Router,
    /// Per-tenant admission state, parallel to `tenants`.
    pub(crate) admission: Vec<TenantAdmission>,
    /// Injected forward skew on the deadline clock, in milliseconds —
    /// the chaos suite's clock-skew fault. Skew eats deadline budget
    /// (degrading searches); it never trips the 504 wall-clock check.
    skew_millis: AtomicU64,
    pub(crate) watchdog: Watchdog,
    stall_timeout: Duration,
    /// Configured worker-pool size (caps watchdog replacements).
    workers: usize,
}

impl Shared {
    pub(crate) fn tenant(&self, idx: usize) -> &Tenant {
        &self.tenants[idx]
    }

    /// How far ahead the (possibly skewed) deadline clock runs.
    pub(crate) fn skew_ahead(&self) -> Duration {
        Duration::from_millis(self.skew_millis.load(Ordering::Relaxed))
    }

    /// The degradation-ladder level for one request of tenant `idx`
    /// with `remaining` deadline budget left (already net of skew).
    /// Refreshes the `hms_degradation_level` and `hms_breaker_state`
    /// gauges.
    pub(crate) fn ladder_level(&self, tenant: usize, remaining: Option<Duration>) -> u8 {
        let breaker = self.admission[tenant].breaker.state();
        let level = degradation_level(
            self.jobs_pending.load(Ordering::SeqCst) as usize,
            self.queue_depth,
            breaker,
            remaining,
            self.deadline,
        );
        self.metrics
            .breaker_state
            .store(breaker.gauge(), Ordering::Relaxed);
        self.metrics
            .degradation_level
            .store(u64::from(level), Ordering::Relaxed);
        level
    }

    /// The server-wide ladder level `/readyz` and `/metrics` report:
    /// the worst tenant's breaker, the shared queue, and the skewed
    /// clock's drain on a fresh request's budget.
    pub(crate) fn server_ladder_level(&self) -> u8 {
        let breaker = self
            .admission
            .iter()
            .map(|a| a.breaker.state())
            .max_by_key(|s| s.gauge())
            .unwrap_or(BreakerState::Closed);
        let remaining = self.deadline.saturating_sub(self.skew_ahead());
        let level = degradation_level(
            self.jobs_pending.load(Ordering::SeqCst) as usize,
            self.queue_depth,
            breaker,
            Some(remaining),
            self.deadline,
        );
        self.metrics
            .breaker_state
            .store(breaker.gauge(), Ordering::Relaxed);
        self.metrics
            .degradation_level
            .store(u64::from(level), Ordering::Relaxed);
        level
    }
}

/// Take the job-queue lock, recovering from poisoning: a worker that
/// panicked while holding it must not take the whole server down — the
/// queue carries no invariant a panic can break.
fn lock_jobs(shared: &Shared) -> MutexGuard<'_, VecDeque<Job>> {
    shared
        .jobs
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Classify the server's current readiness and mirror it into the
/// `hms_ready_state` gauge.
pub(crate) fn current_ready_state(shared: &Shared) -> ReadyState {
    let state = ready_state(
        shared.shutdown.load(Ordering::SeqCst),
        shared.jobs_pending.load(Ordering::SeqCst) as usize,
        shared.queue_depth,
    );
    shared
        .metrics
        .ready_state
        .store(state.gauge(), Ordering::Relaxed);
    state
}

/// A running server: its bound address plus the levers to observe and
/// stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics registry (the same numbers `/metrics` renders).
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// The tenant names this server answers for (index 0 = default).
    pub fn tenants(&self) -> Vec<String> {
        self.shared
            .registry
            .names()
            .into_iter()
            .map(str::to_string)
            .collect()
    }

    /// Skew the deadline clock `ahead` into the future — the chaos
    /// suite's clock-skew fault. Skewed time drains every request's
    /// deadline budget (forcing searches down the degradation ladder)
    /// without ever tripping the wall-clock 504 check; `Duration::ZERO`
    /// restores normal time.
    pub fn set_clock_skew(&self, ahead: Duration) {
        self.shared.skew_millis.store(
            ahead.as_millis().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
    }

    /// The server-wide degradation-ladder level right now (0 = normal,
    /// 1 = beam cap, 2 = local-search cap). Also refreshes the
    /// `hms_degradation_level` gauge.
    pub fn degradation_level(&self) -> u8 {
        self.shared.server_ladder_level()
    }

    /// Ask the server to stop without blocking. Idempotent.
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.job_ready.notify_all();
        for inbox in &self.shared.inboxes {
            inbox.waker.wake();
        }
    }

    /// Whether a shutdown has been requested (by [`Self::request_shutdown`]
    /// or a signal).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Stop accepting, drain queued and in-flight requests, join every
    /// thread. The port is closed when this returns.
    pub fn shutdown(mut self) {
        self.request_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.request_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Refuse one connection with 503 (job queue full). The stream is still
/// blocking here — accepted sockets don't inherit the listener's
/// nonblocking flag on every platform, and a bounded blocking write is
/// fine off the hot path.
fn shed(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let body = error_body("server overloaded: request queue is full");
    let _ = write_response(&mut stream, 503, "application/json", body.as_bytes(), true);
}

/// Fan a finished response out to every waiter of `key` (or just
/// `waiter` when uncoalesced) — shared by the worker pool and the
/// watchdog's force-claim path, so exactly one of them ever answers a
/// given job.
fn deliver(shared: &Shared, key: Option<&FlightKey>, waiter: &Waiter, resp: &Response) {
    let m = &shared.metrics;
    let waiters = match key {
        Some(key) => {
            m.singleflight_leaders.fetch_add(1, Ordering::Relaxed);
            let ws = shared.flights.complete(key);
            if ws.len() > 1 {
                m.coalesced_requests
                    .fetch_add((ws.len() - 1) as u64, Ordering::Relaxed);
            }
            ws
        }
        None => vec![waiter.clone()],
    };
    for w in waiters {
        let inbox = &shared.inboxes[w.shard];
        inbox
            .completions
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(Completion {
                waiter: w,
                status: resp.status,
                content_type: resp.content_type,
                body: Arc::clone(&resp.body),
            });
        inbox.waker.wake();
    }
}

/// Worker: drain cold jobs, run the handler's compute stage, fan the
/// response out to every coalesced waiter.
fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut q = lock_jobs(&shared);
            loop {
                if let Some(j) = q.pop_front() {
                    let len = q.len() as u64;
                    shared.jobs_pending.store(len, Ordering::SeqCst);
                    shared.metrics.queue_depth.store(len, Ordering::Relaxed);
                    break Some(j);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                q = match shared.job_ready.wait_timeout(q, Duration::from_millis(100)) {
                    Ok((guard, _timeout)) => guard,
                    Err(poisoned) => poisoned.into_inner().0,
                };
            }
        };
        let Some(job) = job else {
            return; // shutdown with an empty queue
        };
        let m = Arc::clone(&shared.metrics);
        m.inflight.fetch_add(1, Ordering::Relaxed);
        let cancel = Arc::new(AtomicBool::new(false));
        let claimed = Arc::new(AtomicBool::new(false));
        let slot_id = shared.watchdog.register(ActiveSlot {
            started: Instant::now(),
            cancel: Arc::clone(&cancel),
            claimed: Arc::clone(&claimed),
            key: job.key.clone(),
            waiter: job.waiter.clone(),
        });
        let ctx = Ctx {
            shared: shared.as_ref(),
            arrived: job.waiter.arrived,
            cancel: Some(cancel),
        };
        // A panicking handler answers 500 and the server keeps serving;
        // the shared state it can reach is all panic-tolerant (atomics,
        // poison-recovering locks).
        let resp = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            job.handler.compute(&ctx, &job.req)
        }))
        .unwrap_or_else(|_| Response::error(500, "internal error: handler panicked"));
        m.inflight.fetch_sub(1, Ordering::Relaxed);
        shared.watchdog.deregister(slot_id);
        if claimed
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            // The watchdog already force-claimed this slot and answered
            // its waiters 504; the late result is dropped uncached so a
            // stall can never poison a memo.
            continue;
        }
        if resp.cacheable {
            shared.raw_cache.insert(
                FlightKey::new(&job.req.target, &job.req.body),
                Arc::clone(&resp.body),
            );
        }
        deliver(&shared, job.key.as_ref(), &job.waiter, &resp);
    }
}

/// The pool watchdog: every `interval`, sweep the registered compute
/// slots. Past the stall timeout a slot gets its cooperative cancel
/// flag raised (anytime searches return best-so-far, flagged partial);
/// past twice the timeout the slot is force-claimed — its waiters are
/// answered 504, the breaker records the failure, and a replacement
/// worker is spawned (capped at the pool size) because the wedged
/// thread may never come back.
fn watchdog_loop(shared: Arc<Shared>, interval: Duration) {
    let interval = interval.max(Duration::from_millis(1));
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(interval);
        let stall = shared.stall_timeout;
        let mut kill: Vec<(u64, Option<FlightKey>, Waiter)> = Vec::new();
        {
            let mut slots = shared.watchdog.lock();
            for (id, slot) in slots.iter() {
                let age = slot.started.elapsed();
                if age > stall {
                    slot.cancel.store(true, Ordering::Relaxed);
                }
                if age > stall.saturating_mul(2)
                    && slot
                        .claimed
                        .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                {
                    kill.push((*id, slot.key.clone(), slot.waiter.clone()));
                }
            }
            for (id, _, _) in &kill {
                slots.remove(id);
            }
        }
        for (_, key, waiter) in kill {
            shared
                .metrics
                .watchdog_cancels
                .fetch_add(1, Ordering::Relaxed);
            shared
                .metrics
                .deadline_exceeded
                .fetch_add(1, Ordering::Relaxed);
            // Every tenant's breaker sees the stall: the watchdog can't
            // know which tenant wedged the slot, and a stalled pool
            // starves all of them equally.
            for adm in &shared.admission {
                adm.breaker.on_failure();
            }
            let resp = Response::error(504, "compute stalled; cancelled by the pool watchdog");
            deliver(&shared, key.as_ref(), &waiter, &resp);
            let n = shared.watchdog.replacements.load(Ordering::Relaxed);
            if (n as usize) < shared.workers {
                let s = Arc::clone(&shared);
                if std::thread::Builder::new()
                    .name(format!("hms-worker-r{n}"))
                    .spawn(move || worker_loop(s))
                    .is_ok()
                {
                    shared.watchdog.replacements.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

/// A connection slot in a shard's slab. `gen` bumps on reap so a
/// completion addressed to a previous occupant is recognizably stale.
struct Slot {
    gen: u64,
    conn: Option<Conn>,
}

/// What each poll-set index refers back to.
#[derive(Clone, Copy)]
enum Target {
    WakerRx,
    Listener,
    Conn(usize),
}

/// One shard: an accept + event loop driving its share of connections.
fn shard_loop(shard: usize, listener: TcpListener, shared: Arc<Shared>) {
    let mut poller = Poller::new();
    let mut slots: Vec<Slot> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut interests: Vec<Interest> = Vec::new();
    let mut targets: Vec<Target> = Vec::new();
    let inbox = &shared.inboxes[shard];
    loop {
        let draining = shared.shutdown.load(Ordering::SeqCst);
        if draining && slots.iter().all(|s| s.conn.is_none()) {
            return; // every connection drained; dropping the listener clone
        }

        interests.clear();
        targets.clear();
        interests.push(Interest::new(inbox.waker.receiver()));
        targets.push(Target::WakerRx);
        if !draining {
            interests.push(Interest::new(&listener));
            targets.push(Target::Listener);
        }
        for (i, slot) in slots.iter().enumerate() {
            if let Some(conn) = &slot.conn {
                let mut it = Interest::new(conn.stream());
                it.read = conn.wants_read();
                it.write = conn.wants_write();
                interests.push(it);
                targets.push(Target::Conn(i));
            }
        }

        if poller.wait(&mut interests, POLL_TICK).is_err() {
            // Only unrecoverable poll errors land here (EINTR is eaten
            // by the poller); don't spin on them.
            std::thread::sleep(Duration::from_millis(5));
        }

        for (it, target) in interests.iter().zip(&targets) {
            match *target {
                Target::WakerRx => {
                    if it.readable {
                        inbox.waker.drain();
                    }
                }
                Target::Listener => {
                    if it.readable {
                        accept_burst(&shared, &listener, &mut slots, &mut free);
                    }
                }
                Target::Conn(i) => {
                    let gen = slots[i].gen;
                    let Some(conn) = slots[i].conn.as_mut() else {
                        continue;
                    };
                    if it.readable {
                        // Read before honoring a hangup: a FIN can ride
                        // behind valid final requests.
                        match conn.fill() {
                            FillResult::Data | FillResult::Eof => {
                                process_conn(&shared, shard, i, gen, conn);
                            }
                            FillResult::Idle => {}
                        }
                    } else if it.failed {
                        conn.dead = true;
                    }
                    if it.writable && conn.wants_write() {
                        conn.flush();
                    }
                }
            }
        }

        // Deliver completed cold requests back onto their connections.
        let completions = std::mem::take(
            &mut *inbox
                .completions
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        );
        for c in completions {
            let w = c.waiter;
            // The request *was* served even if its connection died
            // while it computed; the latency series should say so.
            shared
                .metrics
                .on_response(w.route, c.status, w.arrived.elapsed());
            let Some(slot) = slots.get_mut(w.conn) else {
                continue;
            };
            if slot.gen != w.gen {
                continue; // slot was reaped and reused; response is stale
            }
            let Some(conn) = slot.conn.as_mut() else {
                continue;
            };
            let close = w.wants_close || shared.shutdown.load(Ordering::SeqCst);
            enqueue_response(conn, c.status, c.content_type, c.body.as_bytes(), close);
            conn.busy = false;
            conn.flush();
            if !close {
                // Pipelined requests parked behind the busy flag.
                process_conn(&shared, shard, w.conn, w.gen, conn);
            }
        }

        // Slowloris sweep: a request that has been arriving for longer
        // than the read deadline is answered 408 and the peer cut off.
        for slot in slots.iter_mut() {
            let Some(conn) = slot.conn.as_mut() else {
                continue;
            };
            if conn.busy || conn.close_after_flush || conn.dead {
                continue;
            }
            if let Some(t0) = conn.first_byte_at {
                if t0.elapsed() > shared.read_deadline {
                    shared.metrics.read_timeouts.fetch_add(1, Ordering::Relaxed);
                    read_error(&shared, conn, 408, "request read deadline exceeded");
                }
            }
            if draining && !conn.busy && conn.first_byte_at.is_none() && !conn.wants_write() {
                // Idle keep-alive connection during drain: close it so
                // the shard can exit (mid-request peers keep their
                // read-deadline window).
                conn.dead = true;
            }
        }

        // Reap finished connections; bump `gen` so any in-flight
        // completion for the old occupant is dropped on arrival.
        for (i, slot) in slots.iter_mut().enumerate() {
            if let Some(conn) = &slot.conn {
                if conn.reapable() {
                    slot.conn = None;
                    slot.gen += 1;
                    free.push(i);
                    shared
                        .metrics
                        .open_connections
                        .fetch_sub(1, Ordering::Relaxed);
                }
            }
        }
    }
}

/// Accept until the listener runs dry, shedding when the job queue is
/// at capacity.
fn accept_burst(
    shared: &Arc<Shared>,
    listener: &TcpListener,
    slots: &mut Vec<Slot>,
    free: &mut Vec<usize>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.jobs_pending.load(Ordering::SeqCst) as usize >= shared.queue_depth {
                    shared.metrics.shed.fetch_add(1, Ordering::Relaxed);
                    shed(stream);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let conn = Conn::new(stream);
                match free.pop() {
                    Some(i) => slots[i].conn = Some(conn),
                    None => slots.push(Slot {
                        gen: 0,
                        conn: Some(conn),
                    }),
                }
                shared
                    .metrics
                    .open_connections
                    .fetch_add(1, Ordering::Relaxed);
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(_) => break,
        }
    }
}

/// Serialize a response onto the connection's write buffer.
fn enqueue_response(conn: &mut Conn, status: u16, content_type: &str, body: &[u8], close: bool) {
    let mut bytes = Vec::with_capacity(body.len() + 128);
    // Writing to a Vec cannot fail.
    let _ = write_response(&mut bytes, status, content_type, body, close);
    conn.enqueue(&bytes);
    if close {
        conn.close_after_flush = true;
    }
}

/// Answer a request that failed before routing (unreadable, trickled,
/// oversized) and account for it: these responses belong in
/// `hms_responses_total` too — an operator watching a slowloris attack
/// sees the 408s, not a silent loop.
fn read_error(shared: &Shared, conn: &mut Conn, status: u16, msg: &str) {
    shared
        .metrics
        .on_response(Route::Other, status, Duration::ZERO);
    enqueue_response(
        conn,
        status,
        "application/json",
        error_body(msg).as_bytes(),
        true,
    );
    conn.flush();
}

/// Parse and dispatch every complete request buffered on `conn`,
/// stopping at the first one that goes cold (busy) or closes it.
fn process_conn(shared: &Arc<Shared>, shard: usize, idx: usize, gen: u64, conn: &mut Conn) {
    loop {
        if conn.busy || conn.close_after_flush {
            break;
        }
        match conn.next_request() {
            None => break,
            Some(Err(e)) => {
                match e {
                    HttpError::Malformed(m) => {
                        read_error(shared, conn, 400, &format!("malformed request: {m}"))
                    }
                    HttpError::TooLarge(what) => {
                        read_error(shared, conn, 413, &format!("{what} too large"))
                    }
                    // Reset mid-request: nobody left to answer.
                    _ => conn.dead = true,
                }
                break;
            }
            Some(Ok(req)) => handle_request(shared, shard, idx, gen, conn, req),
        }
    }
    conn.flush();
}

/// Route one request: answer warm outcomes inline, dispatch cold ones
/// to the worker pool (joining an existing flight when an identical
/// request is already computing).
fn handle_request(
    shared: &Arc<Shared>,
    shard: usize,
    idx: usize,
    gen: u64,
    conn: &mut Conn,
    req: Request,
) {
    let arrived = Instant::now();
    let m = &shared.metrics;
    let shutting_down = shared.shutdown.load(Ordering::SeqCst);
    match shared.router.find(&req.method, req.path()) {
        RouteMatch::Found(entry) => {
            m.on_request(entry.route);
            let ctx = Ctx {
                shared: shared.as_ref(),
                arrived,
                cancel: None,
            };
            match entry.handler.poll(&ctx, &req) {
                Outcome::Ready(resp) => {
                    let close = req.wants_close() || shutting_down;
                    m.on_response(entry.route, resp.status, arrived.elapsed());
                    enqueue_response(
                        conn,
                        resp.status,
                        resp.content_type,
                        resp.body.as_bytes(),
                        close,
                    );
                }
                Outcome::Compute { coalesce } => {
                    let waiter = Waiter {
                        shard,
                        conn: idx,
                        gen,
                        route: entry.route,
                        wants_close: req.wants_close(),
                        arrived,
                    };
                    conn.busy = true;
                    let key = (coalesce && shared.coalescing)
                        .then(|| FlightKey::new(&req.target, &req.body));
                    let leads = match &key {
                        Some(k) => matches!(shared.flights.join(k, waiter.clone()), Join::Lead),
                        None => true,
                    };
                    if leads {
                        let handler = Arc::clone(&entry.handler);
                        let mut q = lock_jobs(shared);
                        q.push_back(Job {
                            handler,
                            req,
                            key,
                            waiter,
                        });
                        let len = q.len() as u64;
                        shared.jobs_pending.store(len, Ordering::SeqCst);
                        m.queue_depth.store(len, Ordering::Relaxed);
                        drop(q);
                        shared.job_ready.notify_one();
                    }
                }
            }
        }
        RouteMatch::MethodNotAllowed(route) => {
            m.on_request(route);
            let close = req.wants_close() || shutting_down;
            m.on_response(route, 405, arrived.elapsed());
            enqueue_response(
                conn,
                405,
                "application/json",
                error_body(&format!("method {} not allowed here", req.method)).as_bytes(),
                close,
            );
        }
        RouteMatch::NotFound => {
            m.on_request(Route::Other);
            let close = req.wants_close() || shutting_down;
            m.on_response(Route::Other, 404, arrived.elapsed());
            enqueue_response(
                conn,
                404,
                "application/json",
                error_body(&format!("no such endpoint `{}`", req.path())).as_bytes(),
                close,
            );
        }
    }
}
