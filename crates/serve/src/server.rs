//! The placement-advisory HTTP server.
//!
//! Architecture (DESIGN.md §10):
//!
//! * **acceptor thread** — owns the listener (non-blocking, polled so
//!   shutdown is prompt) and pushes accepted connections into a bounded
//!   queue. A full queue sheds load: the acceptor answers `503` inline
//!   and closes, so a saturated server degrades predictably instead of
//!   queueing without bound;
//! * **N worker threads** — pop connections, speak keep-alive HTTP/1.1,
//!   and serve requests. Each request gets a deadline
//!   (`deadline_ms` from arrival at the worker); queries past it are
//!   refused with `504` before any model work runs, and re-checked
//!   between the expensive stages (profile simulation, engine search);
//! * **two cache tiers** — response-level sharded LRUs (prediction
//!   cache keyed by `(kernel, scale, placement, model-options)`; search
//!   cache keyed by the full rank query) over the [`Advisor`]'s
//!   profiled-sample cache, so a warm repeat query runs neither the
//!   simulator nor the trace rewriter — asserted through `/metrics`;
//! * **graceful shutdown** — a flag flipped by [`ServerHandle::shutdown`]
//!   or SIGINT/SIGTERM (see [`crate::signal`]). The acceptor stops
//!   accepting, workers drain the queue and finish in-flight requests
//!   (answering them with `connection: close`), then everything joins.

use std::collections::VecDeque;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use hms_core::ModelOptions;
use hms_kernels::Scale;
use hms_types::{MemorySpace, PlacementMap};

use crate::api::{Advisor, ApiError, Effort, PredictQuery, RankQuery};
use crate::cache::ShardedLru;
use crate::http::{read_request, write_response, HttpError, Request};
use crate::metrics::{Metrics, Route};
use crate::wire::{decode, Json};

/// Server tunables, mirrored by `hms serve`'s flags.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (printed/returned).
    pub addr: String,
    /// Worker threads (0 = one per core, minimum 2).
    pub threads: usize,
    /// Total entries across the prediction and search caches.
    pub cache_entries: usize,
    /// Per-request deadline. Queries that can't start (or reach their
    /// next model stage) in time are refused with 504.
    pub deadline: Duration,
    /// Accepted connections waiting for a worker before the acceptor
    /// sheds with 503. 0 sheds everything (useful for tests).
    pub queue_depth: usize,
    /// Cumulative budget for *receiving* one request, measured from its
    /// first byte. The per-read socket timeout only bounds the gap
    /// between bytes, so a trickling (slowloris) peer would otherwise
    /// pin a worker forever; past this budget the request is answered
    /// 408 and the connection closed.
    pub read_deadline: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            threads: 0,
            cache_entries: 4096,
            deadline: Duration::from_millis(10_000),
            queue_depth: 128,
            read_deadline: Duration::from_millis(10_000),
        }
    }
}

/// What `/readyz` reports (and `hms_ready_state` exposes as a gauge):
/// liveness (`/healthz`) says the process can answer; readiness says it
/// is worth sending real traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadyState {
    /// Accepting and serving normally.
    Ready,
    /// Alive but shedding: the accept queue is at capacity, new
    /// connections are being refused with 503.
    Degraded,
    /// Shutdown requested: draining in-flight work, not accepting.
    Draining,
}

impl ReadyState {
    /// The numeric gauge value for `hms_ready_state`.
    pub fn gauge(self) -> u64 {
        match self {
            ReadyState::Ready => 0,
            ReadyState::Degraded => 1,
            ReadyState::Draining => 2,
        }
    }
}

/// Pure readiness classification, separated from the server so tests
/// can pin the mapping: draining wins over degraded, and a queue at (or
/// over, including a zero-depth queue) capacity is degraded.
pub fn ready_state(shutdown: bool, queue_len: usize, queue_depth: usize) -> ReadyState {
    if shutdown {
        ReadyState::Draining
    } else if queue_len >= queue_depth {
        ReadyState::Degraded
    } else {
        ReadyState::Ready
    }
}

/// Prediction-cache key: everything that can change the response bytes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PredKey {
    kernel: String,
    scale: Scale,
    placement: Vec<(String, MemorySpace)>,
    options: ModelOptions,
    trained: bool,
}

/// Search-cache key: the full rank query plus which endpoint shape
/// (advise has no stats block) — threads excluded, results are
/// thread-invariant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct RankKey {
    kernel: String,
    scale: Scale,
    top: usize,
    prune: bool,
    include_stats: bool,
    options: ModelOptions,
    trained: bool,
}

struct Shared {
    advisor: Advisor,
    metrics: Arc<Metrics>,
    pred_cache: ShardedLru<PredKey, Arc<String>>,
    rank_cache: ShardedLru<RankKey, Arc<String>>,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    shutdown: AtomicBool,
    deadline: Duration,
    read_deadline: Duration,
    queue_depth: usize,
}

/// Take the queue lock, recovering from poisoning: a worker that
/// panicked while holding the lock must not take the whole server down
/// with it — the queue of `TcpStream`s carries no invariant a panic can
/// break.
fn lock_queue(shared: &Shared) -> std::sync::MutexGuard<'_, VecDeque<TcpStream>> {
    shared
        .queue
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A running server: its bound address plus the levers to observe and
/// stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics registry (the same numbers `/metrics` renders).
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Ask the server to stop without blocking. Idempotent.
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
    }

    /// Whether a shutdown has been requested (by [`Self::request_shutdown`]
    /// or a signal).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Stop accepting, drain queued and in-flight requests, join every
    /// thread.
    pub fn shutdown(mut self) {
        self.request_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.request_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Bind, spawn the acceptor and workers, and return immediately.
pub fn spawn(cfg: ServeConfig, advisor: Advisor) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let workers = if cfg.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .max(2)
    } else {
        cfg.threads
    };
    let cache_entries = cfg.cache_entries.max(2);
    let shared = Arc::new(Shared {
        advisor,
        metrics: Arc::new(Metrics::new()),
        pred_cache: ShardedLru::new(cache_entries / 2, 8),
        rank_cache: ShardedLru::new(cache_entries / 2, 8),
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        shutdown: AtomicBool::new(false),
        deadline: cfg.deadline,
        read_deadline: cfg.read_deadline,
        queue_depth: cfg.queue_depth,
    });
    let mut threads = Vec::with_capacity(workers + 1);
    // Thread spawning can fail (resource exhaustion); surface it as the
    // io::Result the caller already handles instead of panicking. A
    // partial spawn is cleaned up by ServerHandle's Drop.
    {
        let shared = Arc::clone(&shared);
        let queue_depth = cfg.queue_depth;
        threads.push(
            std::thread::Builder::new()
                .name("hms-accept".into())
                .spawn(move || acceptor(listener, shared, queue_depth))?,
        );
    }
    for i in 0..workers {
        let worker_shared = Arc::clone(&shared);
        let t = std::thread::Builder::new()
            .name(format!("hms-worker-{i}"))
            .spawn(move || worker(worker_shared));
        match t {
            Ok(t) => threads.push(t),
            Err(e) => {
                // Unwind what was spawned before reporting failure.
                shared.shutdown.store(true, Ordering::SeqCst);
                shared.available.notify_all();
                for t in threads {
                    let _ = t.join();
                }
                return Err(e);
            }
        }
    }
    Ok(ServerHandle {
        addr,
        shared,
        threads,
    })
}

fn acceptor(listener: TcpListener, shared: Arc<Shared>, queue_depth: usize) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let mut q = lock_queue(&shared);
                if q.len() >= queue_depth {
                    drop(q);
                    shared.metrics.shed.fetch_add(1, Ordering::Relaxed);
                    shed(stream);
                    continue;
                }
                q.push_back(stream);
                shared
                    .metrics
                    .queue_depth
                    .store(q.len() as u64, Ordering::Relaxed);
                drop(q);
                shared.available.notify_one();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    // Wake every worker so none sleeps through the shutdown flag.
    shared.available.notify_all();
}

/// Answer a request that failed before routing (unreadable, trickled,
/// oversized) and account for it: these responses belong in
/// `hms_responses_total` too — an operator watching a slowloris attack
/// sees the 408s, not a silent worker.
fn read_error_response(shared: &Shared, writer: &mut TcpStream, status: u16, msg: &str) {
    let body = error_body(msg);
    shared
        .metrics
        .on_response(Route::Other, status, Duration::ZERO);
    let _ = write_response(writer, status, "application/json", body.as_bytes(), true);
}

/// Refuse one connection with 503 (queue full).
fn shed(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let body = error_body("server overloaded: request queue is full");
    let _ = write_response(&mut stream, 503, "application/json", body.as_bytes(), true);
}

fn worker(shared: Arc<Shared>) {
    loop {
        let stream = {
            let mut q = lock_queue(&shared);
            loop {
                if let Some(s) = q.pop_front() {
                    shared
                        .metrics
                        .queue_depth
                        .store(q.len() as u64, Ordering::Relaxed);
                    break Some(s);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                q = match shared.available.wait_timeout(q, Duration::from_millis(100)) {
                    Ok((guard, _timeout)) => guard,
                    Err(poisoned) => poisoned.into_inner().0,
                };
            }
        };
        let Some(stream) = stream else {
            return; // shutdown with an empty queue
        };
        handle_connection(&shared, stream);
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    // Short read timeout: an idle keep-alive connection surfaces as
    // `IdleTimeout` every 250 ms, which is the worker's chance to notice
    // a shutdown request (so `shutdown()` joins promptly instead of
    // waiting out a long timeout).
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let req = match read_request(&mut reader, shared.read_deadline) {
            Ok(req) => req,
            Err(HttpError::Closed) => return,
            Err(HttpError::IdleTimeout) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue; // still idle; keep the connection open
            }
            Err(HttpError::RequestTimeout) => {
                // Slowloris / stalled peer: free the worker with a 408.
                shared.metrics.read_timeouts.fetch_add(1, Ordering::Relaxed);
                read_error_response(shared, &mut writer, 408, "request read deadline exceeded");
                return;
            }
            Err(HttpError::Io(_)) => return, // reset mid-request
            Err(HttpError::Malformed(m)) => {
                read_error_response(shared, &mut writer, 400, &format!("malformed request: {m}"));
                return;
            }
            Err(HttpError::TooLarge(what)) => {
                read_error_response(shared, &mut writer, 413, &format!("{what} too large"));
                return;
            }
        };
        let arrived = Instant::now();
        let m = &shared.metrics;
        m.inflight.fetch_add(1, Ordering::Relaxed);
        let (route, status, content_type, body) = respond(shared, &req, arrived);
        m.inflight.fetch_sub(1, Ordering::Relaxed);
        m.on_request(route);
        m.on_response(route, status, arrived.elapsed());
        // During shutdown finish this request but close the connection so
        // the worker can exit instead of waiting on an idle keep-alive.
        let close = req.wants_close() || shared.shutdown.load(Ordering::SeqCst);
        if write_response(&mut writer, status, content_type, body.as_bytes(), close).is_err() {
            return;
        }
        if close {
            let _ = writer.flush();
            return;
        }
    }
}

/// Route one request. Returns (route, status, content type, body).
fn respond(shared: &Shared, req: &Request, arrived: Instant) -> (Route, u16, &'static str, String) {
    const JSON: &str = "application/json";
    match (req.method.as_str(), req.path()) {
        ("GET", "/healthz") => (Route::Healthz, 200, "text/plain", "ok\n".into()),
        ("GET", "/readyz") => {
            let state = current_ready_state(shared);
            let (status, body) = match state {
                ReadyState::Ready => (200, "ready\n"),
                ReadyState::Degraded => (503, "degraded: request queue at capacity\n"),
                ReadyState::Draining => (503, "draining: shutdown in progress\n"),
            };
            (Route::Readyz, status, "text/plain", body.into())
        }
        ("GET", "/metrics") => {
            // Refresh the readiness gauge so a scrape sees the same
            // state `/readyz` would report right now.
            current_ready_state(shared);
            (
                Route::Metrics,
                200,
                "text/plain; version=0.0.4",
                shared.metrics.render(),
            )
        }
        ("GET", "/v1/kernels") => {
            let scale = match query_scale(req) {
                Ok(s) => s,
                Err(e) => return (Route::Kernels, 400, JSON, error_body(&e)),
            };
            (
                Route::Kernels,
                200,
                JSON,
                shared.advisor.kernels_body(scale).encode_pretty(),
            )
        }
        ("POST", "/v1/predict") => with_body(req, Route::Predict, |v| predict(shared, v, arrived)),
        ("POST", "/v1/advise") => {
            with_body(req, Route::Advise, |v| rank(shared, v, arrived, false))
        }
        ("POST", "/v1/search") => with_body(req, Route::Search, |v| rank(shared, v, arrived, true)),
        (
            _,
            "/healthz" | "/readyz" | "/metrics" | "/v1/kernels" | "/v1/predict" | "/v1/advise"
            | "/v1/search",
        ) => {
            let route = match req.path() {
                "/healthz" => Route::Healthz,
                "/readyz" => Route::Readyz,
                "/metrics" => Route::Metrics,
                "/v1/kernels" => Route::Kernels,
                "/v1/predict" => Route::Predict,
                "/v1/advise" => Route::Advise,
                _ => Route::Search,
            };
            (
                route,
                405,
                JSON,
                error_body(&format!("method {} not allowed here", req.method)),
            )
        }
        _ => (
            Route::Other,
            404,
            JSON,
            error_body(&format!("no such endpoint `{}`", req.path())),
        ),
    }
}

/// Classify the server's current readiness and mirror it into the
/// `hms_ready_state` gauge.
fn current_ready_state(shared: &Shared) -> ReadyState {
    let queue_len = lock_queue(shared).len();
    let state = ready_state(
        shared.shutdown.load(Ordering::SeqCst),
        queue_len,
        shared.queue_depth,
    );
    shared
        .metrics
        .ready_state
        .store(state.gauge(), Ordering::Relaxed);
    state
}

/// Parse `?scale=` (default full) for `GET /v1/kernels`.
fn query_scale(req: &Request) -> Result<Scale, String> {
    match req.target.split_once('?') {
        None => Ok(Scale::Full),
        Some((_, qs)) => {
            for pair in qs.split('&') {
                if let Some(v) = pair.strip_prefix("scale=") {
                    return Scale::parse(v).ok_or_else(|| format!("unknown scale `{v}`"));
                }
            }
            Ok(Scale::Full)
        }
    }
}

/// Decode the body as JSON and dispatch, mapping failures to statuses.
fn with_body(
    req: &Request,
    route: Route,
    f: impl FnOnce(&Json) -> Result<(u16, String), (u16, String)>,
) -> (Route, u16, &'static str, String) {
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => {
            return (
                route,
                400,
                "application/json",
                error_body("body is not UTF-8"),
            )
        }
    };
    let v = match decode(text) {
        Ok(v) => v,
        Err(e) => {
            return (
                route,
                400,
                "application/json",
                error_body(&format!("invalid JSON: {e}")),
            )
        }
    };
    match f(&v) {
        Ok((status, body)) => (route, status, "application/json", body),
        Err((status, body)) => (route, status, "application/json", body),
    }
}

fn api_error(e: ApiError) -> (u16, String) {
    let status = match &e {
        ApiError::BadRequest(_) => 400,
        ApiError::UnknownKernel(_) => 404,
        ApiError::Model(_) => 500,
    };
    (status, error_body(&e.to_string()))
}

fn error_body(msg: &str) -> String {
    Json::Obj(vec![("error".into(), Json::str(msg))]).encode_pretty()
}

/// Deadline check shared by the POST handlers: refuse with 504 before
/// starting (or continuing into) expensive work a dead client will
/// never see the result of.
fn check_deadline(shared: &Shared, arrived: Instant) -> Result<(), (u16, String)> {
    if arrived.elapsed() > shared.deadline {
        shared
            .metrics
            .deadline_exceeded
            .fetch_add(1, Ordering::Relaxed);
        Err((
            504,
            error_body(&format!(
                "deadline exceeded ({} ms)",
                shared.deadline.as_millis()
            )),
        ))
    } else {
        Ok(())
    }
}

fn predict(shared: &Shared, v: &Json, arrived: Instant) -> Result<(u16, String), (u16, String)> {
    check_deadline(shared, arrived)?;
    let q = PredictQuery::from_json(v).map_err(api_error)?;
    let m = &shared.metrics;
    // Resolving the placement needs the kernel; build it (cached) so the
    // cache key is the *resolved* placement — `moves` and an equivalent
    // `placement` object hit the same entry.
    let kt = shared
        .advisor
        .kernel(&q.kernel, q.scale)
        .map_err(api_error)?;
    let resolved = shared
        .advisor
        .resolve_placement(&kt, &q.moves)
        .map_err(api_error)?;
    let key = PredKey {
        kernel: q.kernel.clone(),
        scale: q.scale,
        placement: named_placement(&kt.arrays, &resolved),
        options: shared.advisor.predictor.options,
        trained: shared.advisor.predictor.overlap.is_trained(),
    };
    if let Some(body) = shared.pred_cache.get(&key) {
        m.prediction_cache_hits.fetch_add(1, Ordering::Relaxed);
        return Ok((200, body.as_ref().clone()));
    }
    m.prediction_cache_misses.fetch_add(1, Ordering::Relaxed);
    check_deadline(shared, arrived)?;
    let mut effort = Effort::default();
    let (body, _pred) = shared.advisor.predict(&q, &mut effort).map_err(api_error)?;
    count_effort(m, &effort);
    m.predictions_computed.fetch_add(1, Ordering::Relaxed);
    let body = Arc::new(body.encode_pretty());
    shared.pred_cache.insert(key, Arc::clone(&body));
    Ok((200, body.as_ref().clone()))
}

fn rank(
    shared: &Shared,
    v: &Json,
    arrived: Instant,
    is_search: bool,
) -> Result<(u16, String), (u16, String)> {
    check_deadline(shared, arrived)?;
    let q = RankQuery::from_json(v, is_search).map_err(api_error)?;
    let m = &shared.metrics;
    let key = RankKey {
        kernel: q.kernel.clone(),
        scale: q.scale,
        top: q.top,
        prune: q.prune,
        include_stats: is_search,
        options: shared.advisor.predictor.options,
        trained: shared.advisor.predictor.overlap.is_trained(),
    };
    if let Some(body) = shared.rank_cache.get(&key) {
        m.search_cache_hits.fetch_add(1, Ordering::Relaxed);
        return Ok((200, body.as_ref().clone()));
    }
    m.search_cache_misses.fetch_add(1, Ordering::Relaxed);
    check_deadline(shared, arrived)?;
    let mut effort = Effort::default();
    // The search stops at the request deadline and returns best-so-far
    // flagged `"partial": true` instead of timing out with nothing.
    let (body, outcome) = shared
        .advisor
        .rank(&q, is_search, Some(arrived + shared.deadline), &mut effort)
        .map_err(api_error)?;
    count_effort(m, &effort);
    m.on_engine_stats(&outcome.stats);
    let body = Arc::new(body.encode_pretty());
    // A partial ranking reflects this request's deadline, not the
    // query — caching it would serve truncated results forever.
    if !outcome.partial {
        shared.rank_cache.insert(key, Arc::clone(&body));
    }
    Ok((200, body.as_ref().clone()))
}

fn count_effort(m: &Metrics, e: &Effort) {
    if e.simulated {
        m.simulations.fetch_add(1, Ordering::Relaxed);
        m.profile_cache_misses.fetch_add(1, Ordering::Relaxed);
    }
    if e.profile_hit {
        m.profile_cache_hits.fetch_add(1, Ordering::Relaxed);
    }
}

fn named_placement(
    arrays: &[hms_types::ArrayDef],
    pm: &PlacementMap,
) -> Vec<(String, MemorySpace)> {
    pm.iter()
        .map(|(id, space)| {
            (
                arrays
                    .get(id.index())
                    .map_or_else(|| format!("#{}", id.0), |a| a.name.clone()),
                space,
            )
        })
        .collect()
}
