//! The serve stack's JSON wire format: a hand-rolled, escaping-correct
//! encoder/decoder over a single [`Json`] value type.
//!
//! The workspace has no serializer by design (hermetic build, no
//! crates.io deps), and before this module every JSON producer built
//! strings with `format!` — correct only until a kernel or array name
//! contains a quote, backslash or control character. `wire` centralizes:
//!
//! * **string escaping** per RFC 8259 (`"` `\` and all control
//!   characters; non-ASCII passes through as UTF-8);
//! * **float formatting** that round-trips bit-exactly: integers within
//!   the exact-`f64` range print as integers, everything else uses
//!   Rust's shortest-roundtrip `Display`, negative zero prints as `-0.0`
//!   and non-finite values (which valid responses never contain) encode
//!   as `null`;
//! * **parsing** with surrogate-pair `\uXXXX` decoding, a depth limit
//!   against stack-overflow payloads, and byte-offset error reporting.
//!
//! Objects keep insertion order (`Vec<(String, Json)>`, not a map), so
//! encoding is deterministic — the property the CLI/server byte-identity
//! guarantee rests on. The round-trip law `decode(encode(v)) == v` is
//! property-tested with `proptest_lite` below.

use std::fmt::Write as _;

pub mod v1;

/// One JSON value. Numbers are `f64` (like JavaScript); object member
/// order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Shorthand for a number value.
    pub fn num(x: impl Into<f64>) -> Json {
        Json::Num(x.into())
    }

    /// Object member by key (first match), if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Number as a non-negative integer (rejects fractions and negatives).
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= usize::MAX as f64 => {
                Some(*x as usize)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Compact single-line encoding.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Two-space-indented encoding with a trailing newline — the format
    /// of every response body and `--json` CLI output (byte-identical by
    /// construction: both call exactly this function).
    pub fn encode_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) => write_num(*x, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => write_seq(out, indent, depth, items.is_empty(), '[', ']', |out| {
                for (i, item) in items.iter().enumerate() {
                    sep(out, indent, depth + 1, i > 0);
                    item.write(out, indent, depth + 1);
                }
            }),
            Json::Obj(members) => {
                write_seq(out, indent, depth, members.is_empty(), '{', '}', |out| {
                    for (i, (k, v)) in members.iter().enumerate() {
                        sep(out, indent, depth + 1, i > 0);
                        write_escaped(k, out);
                        out.push(':');
                        if indent.is_some() {
                            out.push(' ');
                        }
                        v.write(out, indent, depth + 1);
                    }
                })
            }
        }
    }
}

fn sep(out: &mut String, indent: Option<usize>, depth: usize, comma: bool) {
    if comma {
        out.push(',');
    }
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    empty: bool,
    open: char,
    close: char,
    body: impl FnOnce(&mut String),
) {
    out.push(open);
    if !empty {
        body(out);
        if let Some(w) = indent {
            out.push('\n');
            for _ in 0..w * depth {
                out.push(' ');
            }
        }
    }
    out.push(close);
}

/// Bit-exact round-trip number formatting (see module docs).
fn write_num(x: f64, out: &mut String) {
    if !x.is_finite() {
        // JSON has no NaN/Infinity; a response carrying one is a bug
        // upstream (the model layer surfaces NonFinitePrediction instead
        // of emitting poisoned floats), so encode defensively as null.
        out.push_str("null");
    } else if x == 0.0 && x.is_sign_negative() {
        out.push_str("-0.0");
    } else if x.fract() == 0.0 && x.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A decode failure: what went wrong and the byte offset it went wrong at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    pub msg: String,
    pub offset: usize,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for WireError {}

/// Nesting ceiling for the recursive-descent parser; deeper payloads are
/// rejected rather than risking stack exhaustion on hostile input.
const MAX_DEPTH: usize = 64;

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn decode(input: &str) -> Result<Json, WireError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> WireError {
        WireError {
            msg: msg.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), WireError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, WireError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, WireError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, WireError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, WireError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, WireError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: require a low-surrogate pair.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                        }
                        other => return Err(self.err(format!("bad escape `\\{}`", other as char))),
                    }
                }
                c if c < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let s = &self.bytes[self.pos..];
                    let len = utf8_len(s[0]);
                    let chunk = std::str::from_utf8(&s[..len.min(s.len())])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, WireError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, WireError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` or non-zero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("malformed number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        let x: f64 = text.parse().map_err(|_| self.err("unparseable number"))?;
        if x.is_finite() {
            Ok(Json::Num(x))
        } else {
            Err(self.err("number overflows f64"))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hms_stats::proptest_lite::{check, Config};
    use hms_stats::rng::Rng;

    /// Structural equality with bit-exact number comparison (plain
    /// `PartialEq` would conflate `0.0` and `-0.0`).
    fn bit_eq(a: &Json, b: &Json) -> bool {
        match (a, b) {
            (Json::Num(x), Json::Num(y)) => x.to_bits() == y.to_bits(),
            (Json::Arr(x), Json::Arr(y)) => {
                x.len() == y.len() && x.iter().zip(y).all(|(a, b)| bit_eq(a, b))
            }
            (Json::Obj(x), Json::Obj(y)) => {
                x.len() == y.len()
                    && x.iter()
                        .zip(y)
                        .all(|((ka, va), (kb, vb))| ka == kb && bit_eq(va, vb))
            }
            _ => a == b,
        }
    }

    fn gen_string(rng: &mut Rng) -> String {
        let n = rng.gen_range(0u64..12) as usize;
        (0..n)
            .map(|_| match rng.gen_range(0u64..8) {
                0 => '"',
                1 => '\\',
                2 => '\n',
                3 => '\u{7}',
                4 => 'é',
                5 => '💾',
                _ => (b'a' + rng.gen_range(0u64..26) as u8) as char,
            })
            .collect()
    }

    fn gen_num(rng: &mut Rng) -> f64 {
        match rng.gen_range(0u64..5) {
            0 => rng.gen_range(0u64..1000) as f64,
            1 => -(rng.gen_range(0u64..1000) as f64),
            2 => f64::from_bits(rng.gen_range(0u64..u64::MAX)),
            3 => rng.gen_range(0u64..u64::MAX) as f64 / 1e6,
            _ => -0.0,
        }
    }

    fn gen_json(rng: &mut Rng, depth: usize) -> Json {
        let top = if depth >= 3 { 4 } else { 6 };
        match rng.gen_range(0u64..top) {
            0 => Json::Null,
            1 => Json::Bool(rng.gen_range(0u64..2) == 1),
            2 => {
                let mut x = gen_num(rng);
                while !x.is_finite() {
                    x = gen_num(rng);
                }
                Json::Num(x)
            }
            3 => Json::Str(gen_string(rng)),
            4 => {
                let n = rng.gen_range(0u64..4) as usize;
                Json::Arr((0..n).map(|_| gen_json(rng, depth + 1)).collect())
            }
            _ => {
                let n = rng.gen_range(0u64..4) as usize;
                Json::Obj(
                    (0..n)
                        .map(|_| (gen_string(rng), gen_json(rng, depth + 1)))
                        .collect(),
                )
            }
        }
    }

    #[test]
    fn roundtrip_property() {
        check(
            "wire_roundtrip",
            &Config::with_cases(256),
            |rng| gen_json(rng, 0),
            |v| {
                for encoded in [v.encode(), v.encode_pretty()] {
                    let back =
                        decode(&encoded).map_err(|e| format!("decode({encoded:?}) failed: {e}"))?;
                    if !bit_eq(v, &back) {
                        return Err(format!("{v:?} -> {encoded} -> {back:?}"));
                    }
                }
                Ok(())
            },
        );
    }

    #[test]
    fn decoder_never_panics_on_garbage() {
        check(
            "wire_garbage_total",
            &Config::with_cases(256),
            |rng| {
                let n = rng.gen_range(0u64..40) as usize;
                (0..n)
                    .map(|_| {
                        let c = rng.gen_range(0u64..128) as u8 as char;
                        if c == '\0' {
                            ' '
                        } else {
                            c
                        }
                    })
                    .collect::<String>()
            },
            |s| {
                let _ = decode(s); // must return, not panic
                Ok(())
            },
        );
    }

    #[test]
    fn escaping_specials() {
        let v = Json::str("a\"b\\c\nd\te\u{7}f");
        assert_eq!(v.encode(), r#""a\"b\\c\nd\te\u0007f""#);
        assert!(bit_eq(&decode(&v.encode()).unwrap(), &v));
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(decode(r#""💾""#).unwrap(), Json::Str("💾".into()));
        assert!(decode(r#""\ud83d""#).is_err());
        assert!(decode(r#""\udcbe""#).is_err());
    }

    #[test]
    fn number_formats() {
        assert_eq!(Json::Num(3.0).encode(), "3");
        assert_eq!(Json::Num(-0.0).encode(), "-0.0");
        assert_eq!(Json::Num(0.5).encode(), "0.5");
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
        assert_eq!(decode("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(decode("-2.5e-2").unwrap(), Json::Num(-0.025));
        assert!(decode("01").is_err());
        assert!(decode("1.").is_err());
        assert!(decode("1e").is_err());
        assert!(decode("--1").is_err());
    }

    #[test]
    fn structural_errors() {
        assert!(decode("").is_err());
        assert!(decode("{").is_err());
        assert!(decode("[1,]").is_err());
        assert!(decode(r#"{"a" 1}"#).is_err());
        assert!(decode("[1] x").is_err());
        assert!(decode("\"\u{1}\"").is_err());
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(decode(&deep).is_err());
    }

    #[test]
    fn pretty_is_indented_and_terminated() {
        let v = Json::Obj(vec![
            ("a".into(), Json::num(1.0)),
            ("b".into(), Json::Arr(vec![Json::Null])),
        ]);
        assert_eq!(
            v.encode_pretty(),
            "{\n  \"a\": 1,\n  \"b\": [\n    null\n  ]\n}\n"
        );
        assert_eq!(Json::Obj(vec![]).encode_pretty(), "{}\n");
    }

    #[test]
    fn accessors() {
        let v = decode(r#"{"k": "spmv", "top": 5, "flag": true, "xs": [1]}"#).unwrap();
        assert_eq!(v.get("k").and_then(Json::as_str), Some("spmv"));
        assert_eq!(v.get("top").and_then(Json::as_usize), Some(5));
        assert_eq!(v.get("flag").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("xs").and_then(Json::as_arr).map(|a| a.len()), Some(1));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Num(1.5).as_usize(), None);
        assert_eq!(Json::Num(-1.0).as_usize(), None);
    }
}
