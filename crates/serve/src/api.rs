//! The advisory API: query types, JSON parsing, and response-body
//! building — shared verbatim by the HTTP server and the CLI's `--json`
//! mode, which is what makes their outputs byte-identical: both sides
//! call exactly the same body builder and exactly the same encoder.
//!
//! The [`Advisor`] owns the model state a long-lived service amortizes:
//! the machine config, the predictor, a kernel-build cache, and the
//! profiled-sample cache (one simulation per `(kernel, scale)`, ever).
//! Response-level caching (predictions, search results) is layered on
//! top by the server and deliberately *not* here, so the CLI path stays
//! a pure function of the query.

use std::collections::HashMap;
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use hms_core::{profile_sample, Prediction, Predictor, Profile, SearchRequest, SearchStrategy};
use hms_kernels::{by_name, registry, Scale};
use hms_trace::KernelTrace;
use hms_types::{GpuConfig, HmsError, MemorySpace, PlacementMap};

use crate::cache::ShardedLru;
use crate::wire::v1::{PlacementV1, PredictResponse, RankResponse, RankedEntry};
use crate::wire::Json;

// The request structs live with the rest of the v1 wire format; these
// aliases keep the original serving API spelling working.
pub use crate::wire::v1::{PredictRequest as PredictQuery, RankRequest as RankQuery};

/// An API failure, classified the way the transport needs it (HTTP
/// status / CLI exit code).
#[derive(Debug, Clone, PartialEq)]
pub enum ApiError {
    /// The query itself is invalid (unparseable JSON, unknown field,
    /// unknown array, illegal placement) — HTTP 400, CLI exit 2.
    BadRequest(String),
    /// The named kernel does not exist — HTTP 404, CLI exit 2.
    UnknownKernel(String),
    /// The model failed on a valid query (non-finite prediction,
    /// numerical failure) — HTTP 500, CLI exit 1.
    Model(HmsError),
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApiError::BadRequest(m) => write!(f, "bad request: {m}"),
            ApiError::UnknownKernel(k) => write!(f, "unknown kernel `{k}`"),
            ApiError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for ApiError {}

impl From<HmsError> for ApiError {
    /// Classify a model-layer error: placement-validation failures are
    /// the client's fault, everything else is the model's.
    fn from(e: HmsError) -> Self {
        match e {
            HmsError::ArrayCountMismatch { .. }
            | HmsError::ReadOnlyPlacement { .. }
            | HmsError::CapacityExceeded { .. }
            | HmsError::Texture2DNeeds2D { .. }
            | HmsError::InvalidInput(_) => ApiError::BadRequest(e.to_string()),
            other => ApiError::Model(other),
        }
    }
}

/// The long-lived model state behind every advisory query.
pub struct Advisor {
    pub cfg: GpuConfig,
    pub predictor: Predictor,
    kernels: Mutex<HashMap<(String, Scale), Arc<KernelTrace>>>,
    profiles: ShardedLru<(String, Scale), Arc<Profile>>,
    /// When set, search engines persist their skeletons here so a
    /// restarted server warm-starts instead of re-recording walks.
    skeleton_cache: Option<std::path::PathBuf>,
    /// When set, skeleton-cache I/O goes through this filesystem — the
    /// fault-injection seam the chaos tests drive with a `FaultyFs`.
    skeleton_fs: Option<Arc<dyn hms_core::CacheFs>>,
}

/// What serving one query cost — the hooks the server turns into
/// metrics. The CLI ignores it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Effort {
    /// A sample simulation ran (profile-cache miss).
    pub simulated: bool,
    /// The profile came from cache.
    pub profile_hit: bool,
}

impl Advisor {
    /// An advisor over `cfg` and `predictor` with a default-sized
    /// profile cache (64 `(kernel, scale)` entries — the full registry at
    /// both scales fits with room to spare).
    pub fn new(cfg: GpuConfig, predictor: Predictor) -> Self {
        Advisor {
            cfg,
            predictor,
            kernels: Mutex::new(HashMap::new()),
            profiles: ShardedLru::new(64, 8),
            skeleton_cache: None,
            skeleton_fs: None,
        }
    }

    /// Persist engine skeletons under `dir` across queries *and*
    /// process restarts. Responses are byte-identical with or without
    /// the cache (stale/corrupt entries silently rebuild), so this is
    /// purely a latency knob for the first search after a restart.
    pub fn with_skeleton_cache(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.skeleton_cache = Some(dir.into());
        self
    }

    /// Like [`Self::with_skeleton_cache`], but with an injected cache
    /// filesystem. The chaos suite hands in a fault-injecting
    /// implementation to prove disk corruption (ENOSPC, torn writes,
    /// bit-rot, failed renames) never changes a response byte.
    pub fn with_skeleton_cache_fs(
        mut self,
        dir: impl Into<std::path::PathBuf>,
        fs: Arc<dyn hms_core::CacheFs>,
    ) -> Self {
        self.skeleton_cache = Some(dir.into());
        self.skeleton_fs = Some(fs);
        self
    }

    /// Build (or reuse) the kernel trace for `(name, scale)`.
    pub fn kernel(&self, name: &str, scale: Scale) -> Result<Arc<KernelTrace>, ApiError> {
        let key = (name.to_string(), scale);
        // A worker that panicked while holding the cache lock can only
        // have left a complete map behind (insert-or-read of immutable
        // `Arc`s), so a poisoned mutex is safe to keep using.
        if let Some(kt) = self
            .kernels
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .get(&key)
        {
            return Ok(Arc::clone(kt));
        }
        let kt = by_name(name, scale).ok_or_else(|| ApiError::UnknownKernel(name.to_string()))?;
        let kt = Arc::new(kt);
        self.kernels
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .entry(key)
            .or_insert_with(|| Arc::clone(&kt));
        Ok(kt)
    }

    /// The already-built kernel trace for `(name, scale)`, if any. The
    /// event loop's warm fast path peeks here so a cold trace build
    /// never runs on a loop thread — only workers call [`Self::kernel`].
    pub fn cached_kernel(&self, name: &str, scale: Scale) -> Option<Arc<KernelTrace>> {
        self.kernels
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .get(&(name.to_string(), scale))
            .map(Arc::clone)
    }

    /// The profiled sample placement for `(kernel, scale)` — one
    /// simulation ever per key, then served from the LRU underneath the
    /// prediction cache.
    pub fn profile(
        &self,
        kt: &KernelTrace,
        scale: Scale,
        effort: &mut Effort,
    ) -> Result<Arc<Profile>, ApiError> {
        let key = (kt.name.clone(), scale);
        if let Some(p) = self.profiles.get(&key) {
            effort.profile_hit = true;
            return Ok(p);
        }
        let p = Arc::new(profile_sample(kt, &kt.default_placement(), &self.cfg)?);
        effort.simulated = true;
        self.profiles.insert(key, Arc::clone(&p));
        Ok(p)
    }

    /// Resolve a query's named moves against the kernel's arrays.
    pub fn resolve_placement(
        &self,
        kt: &KernelTrace,
        moves: &[(String, MemorySpace)],
    ) -> Result<PlacementMap, ApiError> {
        let mut pm = kt.default_placement();
        for (name, space) in moves {
            let Some(idx) = kt.arrays.iter().position(|a| &a.name == name) else {
                return Err(ApiError::BadRequest(format!(
                    "kernel `{}` has no array `{name}`; arrays: {}",
                    kt.name,
                    kt.arrays
                        .iter()
                        .map(|a| a.name.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            };
            pm = pm.with(kt.arrays[idx].id, *space);
        }
        pm.validate(&kt.arrays, &self.cfg)?;
        Ok(pm)
    }

    /// Serve one predict query: body plus the prediction itself (the
    /// server caches the body; callers wanting numbers read the
    /// [`Prediction`]).
    pub fn predict(
        &self,
        q: &PredictQuery,
        effort: &mut Effort,
    ) -> Result<(Json, Prediction), ApiError> {
        let kt = self.kernel(&q.kernel, q.scale)?;
        let target = self.resolve_placement(&kt, &q.moves)?;
        let profile = self.profile(&kt, q.scale, effort)?;
        let pred = self.predictor.predict(&profile, &target)?;
        let body = PredictResponse {
            kernel: q.kernel.clone(),
            scale: q.scale,
            placement: named_placement(&kt, &target),
            predicted_cycles: pred.cycles,
            t_comp: pred.t_comp,
            t_mem: pred.t_mem,
            t_overlap: pred.t_overlap,
            sample_measured_cycles: profile.measured_cycles as f64,
        };
        Ok((body.to_json(), pred))
    }

    /// Serve one advise/search query: ranked read-only placements. The
    /// body carries the ranking (and, for `/v1/search`, the engine's
    /// deterministic counters); wall-clock timings stay out so identical
    /// queries produce identical bytes.
    ///
    /// `deadline` bounds the search itself: past it, the best-so-far
    /// ranking is returned with a `"partial": true` member. The member
    /// is *omitted* when the search completed, so finished responses are
    /// byte-identical whether or not a deadline was set.
    pub fn rank(
        &self,
        q: &RankQuery,
        include_stats: bool,
        deadline: Option<Instant>,
        effort: &mut Effort,
    ) -> Result<(Json, hms_core::SearchOutcome), ApiError> {
        self.rank_capped(q, include_stats, deadline, None, None, effort)
    }

    /// [`Self::rank`] with the degradation-ladder and watchdog hooks
    /// the server needs:
    ///
    /// * `downgrade` — run this strategy *instead of* the requested one
    ///   (the ladder's cap) and stamp the response `"degraded": true`
    ///   with the gap upper bound actually achieved. `None` runs the
    ///   request as asked, byte-identical to [`Self::rank`].
    /// * `cancel` — a cooperative cancellation flag; the pool watchdog
    ///   raises it on stalled slots and the search returns best-so-far
    ///   flagged partial instead of wedging the worker.
    pub fn rank_capped(
        &self,
        q: &RankQuery,
        include_stats: bool,
        deadline: Option<Instant>,
        downgrade: Option<SearchStrategy>,
        cancel: Option<Arc<AtomicBool>>,
        effort: &mut Effort,
    ) -> Result<(Json, hms_core::SearchOutcome), ApiError> {
        let kt = self.kernel(&q.kernel, q.scale)?;
        let profile = self.profile(&kt, q.scale, effort)?;
        let sample = kt.default_placement();
        let strategy = match downgrade {
            Some(cap) => cap,
            None => q.resolve_strategy()?,
        };
        let mut req = SearchRequest::new(&kt.arrays, &sample)
            .read_only_candidates()
            .strategy(strategy)
            .threads(q.threads)
            .deadline(deadline);
        if let Some(flag) = cancel {
            req = req.cancel_flag(flag);
        }
        if let Some(dir) = &self.skeleton_cache {
            req = match &self.skeleton_fs {
                Some(fs) => req.skeleton_cache_fs(dir.clone(), Arc::clone(fs)),
                None => req.skeleton_cache(dir.clone()),
            };
        }
        let outcome = req.run(&self.predictor, &profile)?;
        let body = RankResponse {
            kernel: q.kernel.clone(),
            scale: q.scale,
            strategy: strategy.name(),
            ranked_total: outcome.ranked.len(),
            ranked: outcome
                .ranked
                .iter()
                .take(q.top)
                .map(|r| RankedEntry {
                    placement: named_placement(&kt, &r.placement),
                    predicted_cycles: r.predicted_cycles,
                })
                .collect(),
            partial: outcome.partial,
            degraded: downgrade.map(|_| outcome.stats.gap_upper_bound),
            stats: include_stats.then_some(outcome.stats),
        };
        Ok((body.to_json(), outcome))
    }

    /// The `GET /v1/kernels` body: every registered kernel with its
    /// arrays at `scale`.
    pub fn kernels_body(&self, scale: Scale) -> Json {
        let kernels: Vec<Json> = registry()
            .into_iter()
            .map(|spec| {
                let kt = (spec.build)(scale);
                let arrays: Vec<Json> = kt
                    .arrays
                    .iter()
                    .map(|a| {
                        Json::Obj(vec![
                            ("name".into(), Json::str(&a.name)),
                            ("elements".into(), Json::Num(a.dims.elements() as f64)),
                            ("written".into(), Json::Bool(a.written)),
                        ])
                    })
                    .collect();
                Json::Obj(vec![
                    ("name".into(), Json::str(spec.name)),
                    ("warps".into(), Json::Num(kt.geometry.total_warps() as f64)),
                    ("arrays".into(), Json::Arr(arrays)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("scale".into(), Json::str(scale.as_str())),
            ("kernels".into(), Json::Arr(kernels)),
        ])
    }
}

/// `array name -> space` in array-id order — the placement spelling
/// every response uses (and the per-tenant cache key building block).
pub(crate) fn named_placement(kt: &KernelTrace, pm: &PlacementMap) -> PlacementV1 {
    PlacementV1(
        pm.iter()
            .map(|(id, space)| {
                let name = kt
                    .arrays
                    .get(id.index())
                    .map_or_else(|| format!("#{}", id.0), |a| a.name.clone());
                (name, space)
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::decode;

    fn advisor() -> Advisor {
        let cfg = GpuConfig::test_small();
        Advisor::new(cfg.clone(), Predictor::new(cfg))
    }

    #[test]
    fn predict_query_parses_moves_and_placement() {
        let v =
            decode(r#"{"kernel":"spmv","scale":"test","moves":[{"array":"d_vec","space":"T"}]}"#)
                .unwrap();
        let q = PredictQuery::from_json(&v).unwrap();
        assert_eq!(q.kernel, "spmv");
        assert_eq!(q.scale, Scale::Test);
        assert_eq!(q.moves, vec![("d_vec".into(), MemorySpace::Texture1D)]);

        let v = decode(r#"{"kernel":"vecadd","placement":{"a":"C","b":"T"}}"#).unwrap();
        let q = PredictQuery::from_json(&v).unwrap();
        assert_eq!(q.scale, Scale::Full);
        assert_eq!(q.moves.len(), 2);
    }

    #[test]
    fn queries_reject_junk() {
        for body in [
            r#"{"moves":[]}"#,                                          // no kernel
            r#"{"kernel":"spmv"}"#,                                     // no moves
            r#"{"kernel":"spmv","scale":"huge","moves":[]}"#,           // bad scale
            r#"{"kernel":"spmv","movez":[]}"#,                          // typo field
            r#"{"kernel":"spmv","moves":[{"array":"x","space":"Q"}]}"#, // bad space
            r#"[1,2]"#,                                                 // not an object
        ] {
            let v = decode(body).unwrap();
            assert!(
                matches!(PredictQuery::from_json(&v), Err(ApiError::BadRequest(_))),
                "accepted {body}"
            );
        }
        let v = decode(r#"{"kernel":"spmv","prune":true}"#).unwrap();
        assert!(
            RankQuery::from_json(&v, false).is_err(),
            "advise took prune"
        );
        assert!(RankQuery::from_json(&v, true).is_ok());
    }

    #[test]
    fn predict_body_shape_and_profile_cache() {
        let a = advisor();
        let q = PredictQuery {
            kernel: "vecadd".into(),
            scale: Scale::Test,
            moves: vec![("a".into(), MemorySpace::Texture1D)],
            config: None,
        };
        let mut e1 = Effort::default();
        let (body, pred) = a.predict(&q, &mut e1).unwrap();
        assert!(e1.simulated && !e1.profile_hit);
        assert_eq!(body.get("kernel").and_then(Json::as_str), Some("vecadd"));
        assert_eq!(
            body.get("placement")
                .and_then(|p| p.get("a"))
                .and_then(Json::as_str),
            Some("T")
        );
        assert_eq!(
            body.get("predicted_cycles").and_then(Json::as_f64),
            Some(pred.cycles)
        );
        // Same kernel again: profile must come from cache.
        let mut e2 = Effort::default();
        let (body2, _) = a.predict(&q, &mut e2).unwrap();
        assert!(!e2.simulated && e2.profile_hit);
        assert_eq!(body.encode_pretty(), body2.encode_pretty());
    }

    #[test]
    fn unknown_kernel_and_unknown_array() {
        let a = advisor();
        let mut e = Effort::default();
        let q = PredictQuery {
            kernel: "nope".into(),
            scale: Scale::Test,
            moves: vec![("a".into(), MemorySpace::Constant)],
            config: None,
        };
        assert!(matches!(
            a.predict(&q, &mut e),
            Err(ApiError::UnknownKernel(_))
        ));
        let q = PredictQuery {
            kernel: "vecadd".into(),
            scale: Scale::Test,
            moves: vec![("ghost".into(), MemorySpace::Constant)],
            config: None,
        };
        assert!(matches!(
            a.predict(&q, &mut e),
            Err(ApiError::BadRequest(_))
        ));
        // Illegal placement (written array into constant) is a 400-class
        // error, not a model failure.
        let q = PredictQuery {
            kernel: "vecadd".into(),
            scale: Scale::Test,
            moves: vec![("v".into(), MemorySpace::Constant)],
            config: None,
        };
        assert!(matches!(
            a.predict(&q, &mut e),
            Err(ApiError::BadRequest(_))
        ));
    }

    #[test]
    fn rank_bodies_are_deterministic_and_thread_invariant() {
        let a = advisor();
        let q = RankQuery {
            kernel: "vecadd".into(),
            scale: Scale::Test,
            top: 3,
            prune: false,
            threads: 1,
            config: None,
            strategy: None,
            seed: None,
            beam: None,
        };
        let mut e = Effort::default();
        let (b1, outcome) = a.rank(&q, true, None, &mut e).unwrap();
        let q2 = RankQuery {
            threads: 2,
            ..q.clone()
        };
        let (b2, _) = a.rank(&q2, true, None, &mut e).unwrap();
        assert_eq!(b1.encode_pretty(), b2.encode_pretty());
        assert!(outcome.stats.candidates_evaluated > 0);
        // Finished searches never carry the partial marker.
        assert!(!outcome.partial);
        assert!(b1.get("partial").is_none());
        let ranked = b1.get("ranked").and_then(Json::as_arr).unwrap();
        assert_eq!(ranked.len(), 3);
        // Stats block excludes wall-clock fields.
        let s = b1.get("stats").and_then(Json::as_obj).unwrap();
        assert!(s
            .iter()
            .all(|(k, _)| !k.contains("nanos") && !k.contains("secs")));
    }

    #[test]
    fn anytime_strategy_rank_reports_gap_in_body() {
        let a = advisor();
        let q = RankQuery {
            kernel: "vecadd".into(),
            scale: Scale::Test,
            top: 3,
            prune: false,
            threads: 1,
            config: None,
            strategy: Some("beam".into()),
            seed: None,
            beam: Some(4),
        };
        let mut e = Effort::default();
        let (body, outcome) = a.rank(&q, true, None, &mut e).unwrap();
        assert_eq!(body.get("strategy").and_then(Json::as_str), Some("beam"));
        let stats = body.get("stats").expect("search carries stats");
        assert!(stats.get("candidates_visited").is_some());
        let gap = stats
            .get("gap_upper_bound")
            .and_then(Json::as_f64)
            .expect("anytime stats carry the gap");
        assert!(gap >= 0.0 && gap.is_finite());
        assert_eq!(outcome.stats.strategy, "beam");
        // The anytime members never leak into an exact-strategy body.
        let exact = RankQuery {
            strategy: None,
            beam: None,
            ..q
        };
        let (body, _) = a.rank(&exact, true, None, &mut e).unwrap();
        let text = body.encode_pretty();
        assert!(!text.contains("candidates_visited"));
        assert!(!text.contains("gap_upper_bound"));
    }

    #[test]
    fn expired_deadline_marks_body_partial() {
        let a = advisor();
        let q = RankQuery {
            kernel: "vecadd".into(),
            scale: Scale::Test,
            top: 3,
            prune: true, // branch-and-bound checks the deadline per leaf
            threads: 1,
            config: None,
            strategy: None,
            seed: None,
            beam: None,
        };
        let mut e = Effort::default();
        let deadline = Some(Instant::now()); // already expired
        let (body, outcome) = a.rank(&q, true, deadline, &mut e).unwrap();
        assert!(outcome.partial);
        assert_eq!(body.get("partial").and_then(Json::as_bool), Some(true));
        // Best-so-far is never empty: at least one leaf was evaluated.
        assert!(!outcome.ranked.is_empty());
        // A generous deadline completes and produces the exact same
        // bytes as no deadline at all.
        let far = Some(Instant::now() + std::time::Duration::from_secs(3600));
        let (b_far, o_far) = a.rank(&q, true, far, &mut e).unwrap();
        let (b_none, _) = a.rank(&q, true, None, &mut e).unwrap();
        assert!(!o_far.partial);
        assert_eq!(b_far.encode_pretty(), b_none.encode_pretty());
    }

    #[test]
    fn kernels_body_lists_registry() {
        let a = advisor();
        let body = a.kernels_body(Scale::Test);
        let kernels = body.get("kernels").and_then(Json::as_arr).unwrap();
        assert_eq!(kernels.len(), registry().len());
        assert!(kernels
            .iter()
            .any(|k| k.get("name").and_then(Json::as_str) == Some("spmv")));
    }
}
