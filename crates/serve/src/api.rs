//! The advisory API: query types, JSON parsing, and response-body
//! building — shared verbatim by the HTTP server and the CLI's `--json`
//! mode, which is what makes their outputs byte-identical: both sides
//! call exactly the same body builder and exactly the same encoder.
//!
//! The [`Advisor`] owns the model state a long-lived service amortizes:
//! the machine config, the predictor, a kernel-build cache, and the
//! profiled-sample cache (one simulation per `(kernel, scale)`, ever).
//! Response-level caching (predictions, search results) is layered on
//! top by the server and deliberately *not* here, so the CLI path stays
//! a pure function of the query.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use hms_core::{profile_sample, Prediction, Predictor, Profile, SearchRequest, SearchStrategy};
use hms_kernels::{by_name, registry, Scale};
use hms_trace::KernelTrace;
use hms_types::{GpuConfig, HmsError, MemorySpace, PlacementMap};

use crate::cache::ShardedLru;
use crate::wire::Json;

/// An API failure, classified the way the transport needs it (HTTP
/// status / CLI exit code).
#[derive(Debug, Clone, PartialEq)]
pub enum ApiError {
    /// The query itself is invalid (unparseable JSON, unknown field,
    /// unknown array, illegal placement) — HTTP 400, CLI exit 2.
    BadRequest(String),
    /// The named kernel does not exist — HTTP 404, CLI exit 2.
    UnknownKernel(String),
    /// The model failed on a valid query (non-finite prediction,
    /// numerical failure) — HTTP 500, CLI exit 1.
    Model(HmsError),
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApiError::BadRequest(m) => write!(f, "bad request: {m}"),
            ApiError::UnknownKernel(k) => write!(f, "unknown kernel `{k}`"),
            ApiError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for ApiError {}

impl From<HmsError> for ApiError {
    /// Classify a model-layer error: placement-validation failures are
    /// the client's fault, everything else is the model's.
    fn from(e: HmsError) -> Self {
        match e {
            HmsError::ArrayCountMismatch { .. }
            | HmsError::ReadOnlyPlacement { .. }
            | HmsError::CapacityExceeded { .. }
            | HmsError::Texture2DNeeds2D { .. }
            | HmsError::InvalidInput(_) => ApiError::BadRequest(e.to_string()),
            other => ApiError::Model(other),
        }
    }
}

/// `POST /v1/predict` — one target placement of one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictQuery {
    pub kernel: String,
    pub scale: Scale,
    /// `array name -> space` moves applied on the default placement.
    pub moves: Vec<(String, MemorySpace)>,
}

/// `POST /v1/advise` and `POST /v1/search` — rank the read-only
/// placement space of one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct RankQuery {
    pub kernel: String,
    pub scale: Scale,
    pub top: usize,
    /// Branch-and-bound instead of exhaustive (mirrors `hms search
    /// --prune`). Always `false` for `/v1/advise`.
    pub prune: bool,
    /// Worker threads for candidate evaluation (0 = all cores). Does not
    /// affect the response bytes — evaluation is thread-deterministic.
    pub threads: usize,
}

impl RankQuery {
    fn strategy(&self) -> SearchStrategy {
        if self.prune {
            SearchStrategy::BranchAndBound
        } else {
            SearchStrategy::Exhaustive
        }
    }
}

fn obj_members<'j>(v: &'j Json, what: &str) -> Result<&'j [(String, Json)], ApiError> {
    v.as_obj()
        .ok_or_else(|| ApiError::BadRequest(format!("{what} must be a JSON object")))
}

fn field_str(v: &Json, key: &str) -> Result<String, ApiError> {
    v.get(key)
        .ok_or_else(|| ApiError::BadRequest(format!("missing field `{key}`")))?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| ApiError::BadRequest(format!("field `{key}` must be a string")))
}

fn opt_scale(v: &Json) -> Result<Scale, ApiError> {
    match v.get("scale") {
        None => Ok(Scale::Full),
        Some(s) => {
            let s = s
                .as_str()
                .ok_or_else(|| ApiError::BadRequest("field `scale` must be a string".into()))?;
            Scale::parse(s)
                .ok_or_else(|| ApiError::BadRequest(format!("unknown scale `{s}` (test|full)")))
        }
    }
}

fn opt_usize(v: &Json, key: &str, default: usize) -> Result<usize, ApiError> {
    match v.get(key) {
        None => Ok(default),
        Some(x) => x.as_usize().ok_or_else(|| {
            ApiError::BadRequest(format!("field `{key}` must be a non-negative integer"))
        }),
    }
}

fn opt_bool(v: &Json, key: &str) -> Result<bool, ApiError> {
    match v.get(key) {
        None => Ok(false),
        Some(x) => x
            .as_bool()
            .ok_or_else(|| ApiError::BadRequest(format!("field `{key}` must be a boolean"))),
    }
}

fn reject_unknown(v: &Json, allowed: &[&str], what: &str) -> Result<(), ApiError> {
    for (k, _) in obj_members(v, what)? {
        if !allowed.contains(&k.as_str()) {
            return Err(ApiError::BadRequest(format!(
                "unknown field `{k}` in {what} (allowed: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

impl PredictQuery {
    /// Parse a predict request body. Moves come either as a `"moves"`
    /// array of `{"array": .., "space": ..}` objects or a `"placement"`
    /// object of `name -> space` pairs; both use the paper's short space
    /// notation (`G`, `T`, `2T`, `C`, `S`).
    pub fn from_json(v: &Json) -> Result<PredictQuery, ApiError> {
        reject_unknown(
            v,
            &["kernel", "scale", "moves", "placement"],
            "predict request",
        )?;
        let kernel = field_str(v, "kernel")?;
        let scale = opt_scale(v)?;
        let mut moves = Vec::new();
        if let Some(list) = v.get("moves") {
            let list = list
                .as_arr()
                .ok_or_else(|| ApiError::BadRequest("field `moves` must be an array".into()))?;
            for m in list {
                reject_unknown(m, &["array", "space"], "move")?;
                moves.push((
                    field_str(m, "array")?,
                    parse_space(&field_str(m, "space")?)?,
                ));
            }
        }
        if let Some(pm) = v.get("placement") {
            for (name, space) in obj_members(pm, "field `placement`")? {
                let space = space.as_str().ok_or_else(|| {
                    ApiError::BadRequest(format!("placement of `{name}` must be a string"))
                })?;
                moves.push((name.clone(), parse_space(space)?));
            }
        }
        if moves.is_empty() {
            return Err(ApiError::BadRequest(
                "predict needs `moves` or `placement`".into(),
            ));
        }
        Ok(PredictQuery {
            kernel,
            scale,
            moves,
        })
    }
}

impl RankQuery {
    /// Parse an advise/search request body. `allow_search_knobs` gates
    /// the `prune` and `threads` fields (`/v1/advise` rejects them, like
    /// `hms advise` has no `--prune`).
    pub fn from_json(v: &Json, allow_search_knobs: bool) -> Result<RankQuery, ApiError> {
        let allowed: &[&str] = if allow_search_knobs {
            &["kernel", "scale", "top", "prune", "threads"]
        } else {
            &["kernel", "scale", "top"]
        };
        reject_unknown(v, allowed, "rank request")?;
        Ok(RankQuery {
            kernel: field_str(v, "kernel")?,
            scale: opt_scale(v)?,
            top: opt_usize(v, "top", 5)?,
            prune: allow_search_knobs && opt_bool(v, "prune")?,
            threads: if allow_search_knobs {
                opt_usize(v, "threads", 1)?
            } else {
                1
            },
        })
    }
}

fn parse_space(s: &str) -> Result<MemorySpace, ApiError> {
    MemorySpace::from_short(s)
        .ok_or_else(|| ApiError::BadRequest(format!("unknown space `{s}` (use G, T, 2T, C, or S)")))
}

/// The long-lived model state behind every advisory query.
pub struct Advisor {
    pub cfg: GpuConfig,
    pub predictor: Predictor,
    kernels: Mutex<HashMap<(String, Scale), Arc<KernelTrace>>>,
    profiles: ShardedLru<(String, Scale), Arc<Profile>>,
    /// When set, search engines persist their skeletons here so a
    /// restarted server warm-starts instead of re-recording walks.
    skeleton_cache: Option<std::path::PathBuf>,
}

/// What serving one query cost — the hooks the server turns into
/// metrics. The CLI ignores it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Effort {
    /// A sample simulation ran (profile-cache miss).
    pub simulated: bool,
    /// The profile came from cache.
    pub profile_hit: bool,
}

impl Advisor {
    /// An advisor over `cfg` and `predictor` with a default-sized
    /// profile cache (64 `(kernel, scale)` entries — the full registry at
    /// both scales fits with room to spare).
    pub fn new(cfg: GpuConfig, predictor: Predictor) -> Self {
        Advisor {
            cfg,
            predictor,
            kernels: Mutex::new(HashMap::new()),
            profiles: ShardedLru::new(64, 8),
            skeleton_cache: None,
        }
    }

    /// Persist engine skeletons under `dir` across queries *and*
    /// process restarts. Responses are byte-identical with or without
    /// the cache (stale/corrupt entries silently rebuild), so this is
    /// purely a latency knob for the first search after a restart.
    pub fn with_skeleton_cache(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.skeleton_cache = Some(dir.into());
        self
    }

    /// Build (or reuse) the kernel trace for `(name, scale)`.
    pub fn kernel(&self, name: &str, scale: Scale) -> Result<Arc<KernelTrace>, ApiError> {
        let key = (name.to_string(), scale);
        // A worker that panicked while holding the cache lock can only
        // have left a complete map behind (insert-or-read of immutable
        // `Arc`s), so a poisoned mutex is safe to keep using.
        if let Some(kt) = self
            .kernels
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .get(&key)
        {
            return Ok(Arc::clone(kt));
        }
        let kt = by_name(name, scale).ok_or_else(|| ApiError::UnknownKernel(name.to_string()))?;
        let kt = Arc::new(kt);
        self.kernels
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .entry(key)
            .or_insert_with(|| Arc::clone(&kt));
        Ok(kt)
    }

    /// The profiled sample placement for `(kernel, scale)` — one
    /// simulation ever per key, then served from the LRU underneath the
    /// prediction cache.
    pub fn profile(
        &self,
        kt: &KernelTrace,
        scale: Scale,
        effort: &mut Effort,
    ) -> Result<Arc<Profile>, ApiError> {
        let key = (kt.name.clone(), scale);
        if let Some(p) = self.profiles.get(&key) {
            effort.profile_hit = true;
            return Ok(p);
        }
        let p = Arc::new(profile_sample(kt, &kt.default_placement(), &self.cfg)?);
        effort.simulated = true;
        self.profiles.insert(key, Arc::clone(&p));
        Ok(p)
    }

    /// Resolve a query's named moves against the kernel's arrays.
    pub fn resolve_placement(
        &self,
        kt: &KernelTrace,
        moves: &[(String, MemorySpace)],
    ) -> Result<PlacementMap, ApiError> {
        let mut pm = kt.default_placement();
        for (name, space) in moves {
            let Some(idx) = kt.arrays.iter().position(|a| &a.name == name) else {
                return Err(ApiError::BadRequest(format!(
                    "kernel `{}` has no array `{name}`; arrays: {}",
                    kt.name,
                    kt.arrays
                        .iter()
                        .map(|a| a.name.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            };
            pm = pm.with(kt.arrays[idx].id, *space);
        }
        pm.validate(&kt.arrays, &self.cfg)?;
        Ok(pm)
    }

    /// Serve one predict query: body plus the prediction itself (the
    /// server caches the body; callers wanting numbers read the
    /// [`Prediction`]).
    pub fn predict(
        &self,
        q: &PredictQuery,
        effort: &mut Effort,
    ) -> Result<(Json, Prediction), ApiError> {
        let kt = self.kernel(&q.kernel, q.scale)?;
        let target = self.resolve_placement(&kt, &q.moves)?;
        let profile = self.profile(&kt, q.scale, effort)?;
        let pred = self.predictor.predict(&profile, &target)?;
        let body = Json::Obj(vec![
            ("kernel".into(), Json::str(&q.kernel)),
            ("scale".into(), Json::str(q.scale.as_str())),
            ("placement".into(), placement_obj(&kt, &target)),
            ("predicted_cycles".into(), Json::Num(pred.cycles)),
            ("t_comp".into(), Json::Num(pred.t_comp)),
            ("t_mem".into(), Json::Num(pred.t_mem)),
            ("t_overlap".into(), Json::Num(pred.t_overlap)),
            (
                "sample_measured_cycles".into(),
                Json::Num(profile.measured_cycles as f64),
            ),
        ]);
        Ok((body, pred))
    }

    /// Serve one advise/search query: ranked read-only placements. The
    /// body carries the ranking (and, for `/v1/search`, the engine's
    /// deterministic counters); wall-clock timings stay out so identical
    /// queries produce identical bytes.
    ///
    /// `deadline` bounds the search itself: past it, the best-so-far
    /// ranking is returned with a `"partial": true` member. The member
    /// is *omitted* when the search completed, so finished responses are
    /// byte-identical whether or not a deadline was set.
    pub fn rank(
        &self,
        q: &RankQuery,
        include_stats: bool,
        deadline: Option<Instant>,
        effort: &mut Effort,
    ) -> Result<(Json, hms_core::SearchOutcome), ApiError> {
        let kt = self.kernel(&q.kernel, q.scale)?;
        let profile = self.profile(&kt, q.scale, effort)?;
        let sample = kt.default_placement();
        let mut req = SearchRequest::new(&kt.arrays, &sample)
            .read_only_candidates()
            .strategy(q.strategy())
            .threads(q.threads)
            .deadline(deadline);
        if let Some(dir) = &self.skeleton_cache {
            req = req.skeleton_cache(dir.clone());
        }
        let outcome = req.run(&self.predictor, &profile)?;
        let ranked: Vec<Json> = outcome
            .ranked
            .iter()
            .take(q.top)
            .map(|r| {
                Json::Obj(vec![
                    ("placement".into(), placement_obj(&kt, &r.placement)),
                    ("predicted_cycles".into(), Json::Num(r.predicted_cycles)),
                ])
            })
            .collect();
        let mut members = vec![
            ("kernel".into(), Json::str(&q.kernel)),
            ("scale".into(), Json::str(q.scale.as_str())),
            (
                "strategy".into(),
                Json::str(if q.prune {
                    "branch_and_bound"
                } else {
                    "exhaustive"
                }),
            ),
            (
                "ranked_total".into(),
                Json::num(outcome.ranked.len() as u32),
            ),
            ("ranked".into(), Json::Arr(ranked)),
        ];
        if outcome.partial {
            members.push(("partial".into(), Json::Bool(true)));
        }
        if include_stats {
            let s = &outcome.stats;
            members.push((
                "stats".into(),
                Json::Obj(vec![
                    (
                        "candidates_enumerated".into(),
                        Json::Num(s.candidates_enumerated as f64),
                    ),
                    (
                        "candidates_evaluated".into(),
                        Json::Num(s.candidates_evaluated as f64),
                    ),
                    (
                        "candidates_pruned".into(),
                        Json::Num(s.candidates_pruned as f64),
                    ),
                    (
                        "skeletons_built".into(),
                        Json::Num(s.skeletons_built as f64),
                    ),
                    ("full_rewrites".into(), Json::Num(s.full_rewrites as f64)),
                    (
                        "delta_cache_hits".into(),
                        Json::Num(s.delta_cache_hits as f64),
                    ),
                    (
                        "exact_fallbacks".into(),
                        Json::Num(s.exact_fallbacks as f64),
                    ),
                    ("rewrite_reduction".into(), Json::Num(s.rewrite_reduction())),
                ]),
            ));
        }
        Ok((Json::Obj(members), outcome))
    }

    /// The `GET /v1/kernels` body: every registered kernel with its
    /// arrays at `scale`.
    pub fn kernels_body(&self, scale: Scale) -> Json {
        let kernels: Vec<Json> = registry()
            .into_iter()
            .map(|spec| {
                let kt = (spec.build)(scale);
                let arrays: Vec<Json> = kt
                    .arrays
                    .iter()
                    .map(|a| {
                        Json::Obj(vec![
                            ("name".into(), Json::str(&a.name)),
                            ("elements".into(), Json::Num(a.dims.elements() as f64)),
                            ("written".into(), Json::Bool(a.written)),
                        ])
                    })
                    .collect();
                Json::Obj(vec![
                    ("name".into(), Json::str(spec.name)),
                    ("warps".into(), Json::Num(kt.geometry.total_warps() as f64)),
                    ("arrays".into(), Json::Arr(arrays)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("scale".into(), Json::str(scale.as_str())),
            ("kernels".into(), Json::Arr(kernels)),
        ])
    }
}

/// `{array name -> short space}` in array-id order — the placement
/// spelling every response uses.
fn placement_obj(kt: &KernelTrace, pm: &PlacementMap) -> Json {
    Json::Obj(
        pm.iter()
            .map(|(id, space)| {
                let name = kt.arrays.get(id.index()).map_or("?", |a| a.name.as_str());
                (name.to_string(), Json::str(space.short()))
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::decode;

    fn advisor() -> Advisor {
        let cfg = GpuConfig::test_small();
        Advisor::new(cfg.clone(), Predictor::new(cfg))
    }

    #[test]
    fn predict_query_parses_moves_and_placement() {
        let v =
            decode(r#"{"kernel":"spmv","scale":"test","moves":[{"array":"d_vec","space":"T"}]}"#)
                .unwrap();
        let q = PredictQuery::from_json(&v).unwrap();
        assert_eq!(q.kernel, "spmv");
        assert_eq!(q.scale, Scale::Test);
        assert_eq!(q.moves, vec![("d_vec".into(), MemorySpace::Texture1D)]);

        let v = decode(r#"{"kernel":"vecadd","placement":{"a":"C","b":"T"}}"#).unwrap();
        let q = PredictQuery::from_json(&v).unwrap();
        assert_eq!(q.scale, Scale::Full);
        assert_eq!(q.moves.len(), 2);
    }

    #[test]
    fn queries_reject_junk() {
        for body in [
            r#"{"moves":[]}"#,                                          // no kernel
            r#"{"kernel":"spmv"}"#,                                     // no moves
            r#"{"kernel":"spmv","scale":"huge","moves":[]}"#,           // bad scale
            r#"{"kernel":"spmv","movez":[]}"#,                          // typo field
            r#"{"kernel":"spmv","moves":[{"array":"x","space":"Q"}]}"#, // bad space
            r#"[1,2]"#,                                                 // not an object
        ] {
            let v = decode(body).unwrap();
            assert!(
                matches!(PredictQuery::from_json(&v), Err(ApiError::BadRequest(_))),
                "accepted {body}"
            );
        }
        let v = decode(r#"{"kernel":"spmv","prune":true}"#).unwrap();
        assert!(
            RankQuery::from_json(&v, false).is_err(),
            "advise took prune"
        );
        assert!(RankQuery::from_json(&v, true).is_ok());
    }

    #[test]
    fn predict_body_shape_and_profile_cache() {
        let a = advisor();
        let q = PredictQuery {
            kernel: "vecadd".into(),
            scale: Scale::Test,
            moves: vec![("a".into(), MemorySpace::Texture1D)],
        };
        let mut e1 = Effort::default();
        let (body, pred) = a.predict(&q, &mut e1).unwrap();
        assert!(e1.simulated && !e1.profile_hit);
        assert_eq!(body.get("kernel").and_then(Json::as_str), Some("vecadd"));
        assert_eq!(
            body.get("placement")
                .and_then(|p| p.get("a"))
                .and_then(Json::as_str),
            Some("T")
        );
        assert_eq!(
            body.get("predicted_cycles").and_then(Json::as_f64),
            Some(pred.cycles)
        );
        // Same kernel again: profile must come from cache.
        let mut e2 = Effort::default();
        let (body2, _) = a.predict(&q, &mut e2).unwrap();
        assert!(!e2.simulated && e2.profile_hit);
        assert_eq!(body.encode_pretty(), body2.encode_pretty());
    }

    #[test]
    fn unknown_kernel_and_unknown_array() {
        let a = advisor();
        let mut e = Effort::default();
        let q = PredictQuery {
            kernel: "nope".into(),
            scale: Scale::Test,
            moves: vec![("a".into(), MemorySpace::Constant)],
        };
        assert!(matches!(
            a.predict(&q, &mut e),
            Err(ApiError::UnknownKernel(_))
        ));
        let q = PredictQuery {
            kernel: "vecadd".into(),
            scale: Scale::Test,
            moves: vec![("ghost".into(), MemorySpace::Constant)],
        };
        assert!(matches!(
            a.predict(&q, &mut e),
            Err(ApiError::BadRequest(_))
        ));
        // Illegal placement (written array into constant) is a 400-class
        // error, not a model failure.
        let q = PredictQuery {
            kernel: "vecadd".into(),
            scale: Scale::Test,
            moves: vec![("v".into(), MemorySpace::Constant)],
        };
        assert!(matches!(
            a.predict(&q, &mut e),
            Err(ApiError::BadRequest(_))
        ));
    }

    #[test]
    fn rank_bodies_are_deterministic_and_thread_invariant() {
        let a = advisor();
        let q = RankQuery {
            kernel: "vecadd".into(),
            scale: Scale::Test,
            top: 3,
            prune: false,
            threads: 1,
        };
        let mut e = Effort::default();
        let (b1, outcome) = a.rank(&q, true, None, &mut e).unwrap();
        let q2 = RankQuery {
            threads: 2,
            ..q.clone()
        };
        let (b2, _) = a.rank(&q2, true, None, &mut e).unwrap();
        assert_eq!(b1.encode_pretty(), b2.encode_pretty());
        assert!(outcome.stats.candidates_evaluated > 0);
        // Finished searches never carry the partial marker.
        assert!(!outcome.partial);
        assert!(b1.get("partial").is_none());
        let ranked = b1.get("ranked").and_then(Json::as_arr).unwrap();
        assert_eq!(ranked.len(), 3);
        // Stats block excludes wall-clock fields.
        let s = b1.get("stats").and_then(Json::as_obj).unwrap();
        assert!(s
            .iter()
            .all(|(k, _)| !k.contains("nanos") && !k.contains("secs")));
    }

    #[test]
    fn expired_deadline_marks_body_partial() {
        let a = advisor();
        let q = RankQuery {
            kernel: "vecadd".into(),
            scale: Scale::Test,
            top: 3,
            prune: true, // branch-and-bound checks the deadline per leaf
            threads: 1,
        };
        let mut e = Effort::default();
        let deadline = Some(Instant::now()); // already expired
        let (body, outcome) = a.rank(&q, true, deadline, &mut e).unwrap();
        assert!(outcome.partial);
        assert_eq!(body.get("partial").and_then(Json::as_bool), Some(true));
        // Best-so-far is never empty: at least one leaf was evaluated.
        assert!(!outcome.ranked.is_empty());
        // A generous deadline completes and produces the exact same
        // bytes as no deadline at all.
        let far = Some(Instant::now() + std::time::Duration::from_secs(3600));
        let (b_far, o_far) = a.rank(&q, true, far, &mut e).unwrap();
        let (b_none, _) = a.rank(&q, true, None, &mut e).unwrap();
        assert!(!o_far.partial);
        assert_eq!(b_far.encode_pretty(), b_none.encode_pretty());
    }

    #[test]
    fn kernels_body_lists_registry() {
        let a = advisor();
        let body = a.kernels_body(Scale::Test);
        let kernels = body.get("kernels").and_then(Json::as_arr).unwrap();
        assert_eq!(kernels.len(), registry().len());
        assert!(kernels
            .iter()
            .any(|k| k.get("name").and_then(Json::as_str) == Some("spmv")));
    }
}
