//! Minimal HTTP/1.1 framing over blocking streams — just enough for the
//! advisory API: request-line + headers + `Content-Length` bodies in,
//! fixed-length responses out, with keep-alive. No chunked encoding, no
//! TLS, no pipelining (one request is fully answered before the next is
//! read, which is how every mainstream client uses HTTP/1.1 anyway).
//!
//! Limits are enforced while reading (not after), so a hostile peer
//! cannot balloon memory: 8 KiB request line, 64 headers of 8 KiB each,
//! 1 MiB body.

use std::io::{BufRead, Write};

pub const MAX_LINE_BYTES: usize = 8 * 1024;
pub const MAX_HEADERS: usize = 64;
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: String,
    /// Path including any query string, exactly as sent.
    pub target: String,
    /// Header names lowercased; values trimmed.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Path with any `?query` suffix removed.
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// Whether the client asked to close the connection after this
    /// exchange (`Connection: close`, or HTTP/1.0 semantics — we only
    /// speak 1.1, so just the header).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Clean EOF before any request byte — the peer just hung up.
    Closed,
    /// The read timeout fired while waiting for the *first* byte of a
    /// request — an idle keep-alive connection, not an error. The server
    /// uses this to poll its shutdown flag between requests.
    IdleTimeout,
    /// Read failed or timed out mid-request.
    Io(std::io::Error),
    /// The bytes are not an HTTP/1.1 request we accept; the message is
    /// safe to echo in a 400.
    Malformed(String),
    /// Structurally fine but over a size limit (413 for bodies).
    TooLarge(&'static str),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::IdleTimeout => write!(f, "idle keep-alive timeout"),
            HttpError::Io(e) => write!(f, "io error: {e}"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge(what) => write!(f, "{what} too large"),
        }
    }
}

/// Read one CRLF- (or LF-) terminated line without the terminator,
/// bounded by [`MAX_LINE_BYTES`].
fn read_line(r: &mut impl BufRead) -> Result<String, HttpError> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if buf.is_empty() {
                    return Err(HttpError::Closed);
                }
                return Err(HttpError::Malformed("eof inside line".into()));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    return String::from_utf8(buf)
                        .map_err(|_| HttpError::Malformed("non-UTF-8 header line".into()));
                }
                buf.push(byte[0]);
                if buf.len() > MAX_LINE_BYTES {
                    return Err(HttpError::TooLarge("header line"));
                }
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// Read and parse one request. `Err(Closed)` means the peer closed the
/// connection between requests (normal keep-alive teardown).
pub fn read_request(r: &mut impl BufRead) -> Result<Request, HttpError> {
    // Wait for the first byte explicitly so a read timeout on an idle
    // keep-alive connection is distinguishable from one mid-request.
    match r.fill_buf() {
        Ok([]) => return Err(HttpError::Closed),
        Ok(_) => {}
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            return Err(HttpError::IdleTimeout)
        }
        Err(e) => return Err(HttpError::Io(e)),
    }
    let request_line = read_line(r)?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line `{request_line}`"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed(format!("bad version `{version}`")));
    }
    let mut headers = Vec::new();
    loop {
        let line = match read_line(r) {
            Ok(l) => l,
            Err(HttpError::Closed) => {
                return Err(HttpError::Malformed("eof inside headers".into()))
            }
            Err(e) => return Err(e),
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooLarge("header count"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad content-length `{v}`")))?,
        None => 0,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge("body"));
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body).map_err(HttpError::Io)?;
    Ok(Request {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        body,
    })
}

/// Canonical reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Write one fixed-length response. `close` controls the `Connection`
/// header; the caller owns actually closing the stream.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    close: bool,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        status,
        reason(status),
        content_type,
        body.len(),
        if close { "close" } else { "keep-alive" },
    );
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(b"POST /v1/predict HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"a\"")
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path(), "/v1/predict");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"{\"a\"");
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_get_without_body_and_query() {
        let req = parse(b"GET /metrics?x=1 HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path(), "/metrics");
        assert!(req.body.is_empty());
        assert!(req.wants_close());
    }

    #[test]
    fn tolerates_bare_lf_lines() {
        let req = parse(b"GET /healthz HTTP/1.1\nHost: y\n\n").unwrap();
        assert_eq!(req.path(), "/healthz");
    }

    #[test]
    fn clean_eof_is_closed() {
        assert!(matches!(parse(b""), Err(HttpError::Closed)));
    }

    #[test]
    fn rejects_malformed() {
        assert!(matches!(
            parse(b"NOT_A_REQUEST\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/2\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nContent-Length: pony\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_oversize_body_declaration() {
        let req = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse(req.as_bytes()),
            Err(HttpError::TooLarge("body"))
        ));
    }

    #[test]
    fn truncated_body_is_io_error() {
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpError::Io(_))
        ));
    }

    #[test]
    fn response_bytes_shape() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn keepalive_reads_two_requests_from_one_stream() {
        let bytes: &[u8] =
            b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut r = BufReader::new(bytes);
        assert_eq!(read_request(&mut r).unwrap().path(), "/healthz");
        let second = read_request(&mut r).unwrap();
        assert_eq!(second.path(), "/metrics");
        assert!(second.wants_close());
        assert!(matches!(read_request(&mut r), Err(HttpError::Closed)));
    }
}
