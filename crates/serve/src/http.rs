//! Minimal HTTP/1.1 framing over blocking streams — just enough for the
//! advisory API: request-line + headers + `Content-Length` bodies in,
//! fixed-length responses out, with keep-alive. No chunked encoding, no
//! TLS, no pipelining (one request is fully answered before the next is
//! read, which is how every mainstream client uses HTTP/1.1 anyway).
//!
//! Limits are enforced while reading (not after), so a hostile peer
//! cannot balloon memory: 8 KiB request line, 64 headers of 8 KiB each,
//! 1 MiB body.

//! A read timeout on the stream alone is not enough: a slowloris peer
//! that drips one byte per timeout window never trips it. So reading a
//! request is bounded by a *cumulative* deadline that starts at the
//! first request byte — however slowly the bytes arrive, the whole
//! request must land within [`read_request`]'s `read_deadline` or the
//! worker answers 408 and moves on.

use std::io::{BufRead, Write};
use std::time::{Duration, Instant};

pub const MAX_LINE_BYTES: usize = 8 * 1024;
pub const MAX_HEADERS: usize = 64;
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: String,
    /// Path including any query string, exactly as sent.
    pub target: String,
    /// Header names lowercased; values trimmed.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Path with any `?query` suffix removed.
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// Whether the client asked to close the connection after this
    /// exchange (`Connection: close`, or HTTP/1.0 semantics — we only
    /// speak 1.1, so just the header).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Clean EOF before any request byte — the peer just hung up.
    Closed,
    /// The read timeout fired while waiting for the *first* byte of a
    /// request — an idle keep-alive connection, not an error. The server
    /// uses this to poll its shutdown flag between requests.
    IdleTimeout,
    /// The cumulative request-read deadline expired mid-request: the
    /// peer is trickling (slowloris) or stalled. Answered with 408 and
    /// a close, freeing the worker.
    RequestTimeout,
    /// Read failed mid-request (reset, broken pipe, ...).
    Io(std::io::Error),
    /// The bytes are not an HTTP/1.1 request we accept; the message is
    /// safe to echo in a 400.
    Malformed(String),
    /// Structurally fine but over a size limit (413 for bodies).
    TooLarge(&'static str),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::IdleTimeout => write!(f, "idle keep-alive timeout"),
            HttpError::RequestTimeout => write!(f, "request not received within the read deadline"),
            HttpError::Io(e) => write!(f, "io error: {e}"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge(what) => write!(f, "{what} too large"),
        }
    }
}

/// Is this a stream read-timeout tick (retryable until the cumulative
/// deadline) rather than a real failure?
fn is_timeout_tick(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Map one retryable read error against the cumulative deadline.
fn deadline_tick(e: std::io::Error, deadline: Instant) -> Result<(), HttpError> {
    if is_timeout_tick(&e) {
        if Instant::now() >= deadline {
            Err(HttpError::RequestTimeout)
        } else {
            Ok(()) // still inside the budget: retry the read
        }
    } else if e.kind() == std::io::ErrorKind::Interrupted {
        Ok(())
    } else {
        Err(HttpError::Io(e))
    }
}

/// Read one CRLF- (or LF-) terminated line without the terminator,
/// bounded by [`MAX_LINE_BYTES`] and the cumulative `deadline`.
fn read_line(r: &mut impl BufRead, deadline: Instant) -> Result<String, HttpError> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if buf.is_empty() {
                    return Err(HttpError::Closed);
                }
                return Err(HttpError::Malformed("eof inside line".into()));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    return String::from_utf8(buf)
                        .map_err(|_| HttpError::Malformed("non-UTF-8 header line".into()));
                }
                buf.push(byte[0]);
                if buf.len() > MAX_LINE_BYTES {
                    return Err(HttpError::TooLarge("header line"));
                }
                // A trickling peer keeps every individual read under the
                // socket timeout, so the deadline must also be enforced
                // on the successful-read path.
                if Instant::now() >= deadline {
                    return Err(HttpError::RequestTimeout);
                }
            }
            Err(e) => deadline_tick(e, deadline)?,
        }
    }
}

/// Read and parse one request. `Err(Closed)` means the peer closed the
/// connection between requests (normal keep-alive teardown).
///
/// `read_deadline` bounds the *whole* request read, measured from the
/// first byte: the stream's own read timeout only bounds the gap
/// between reads, so without this a trickling peer pins a worker
/// indefinitely. The clock starts at the first byte — an idle
/// keep-alive connection still surfaces as [`HttpError::IdleTimeout`]
/// on the stream timeout, never as a request timeout.
pub fn read_request(r: &mut impl BufRead, read_deadline: Duration) -> Result<Request, HttpError> {
    // Wait for the first byte explicitly so a read timeout on an idle
    // keep-alive connection is distinguishable from one mid-request.
    match r.fill_buf() {
        Ok([]) => return Err(HttpError::Closed),
        Ok(_) => {}
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            return Err(HttpError::IdleTimeout)
        }
        Err(e) => return Err(HttpError::Io(e)),
    }
    // First byte is in: the cumulative budget for the rest starts now.
    let deadline = Instant::now() + read_deadline;
    let request_line = read_line(r, deadline)?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line `{request_line}`"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed(format!("bad version `{version}`")));
    }
    let mut headers = Vec::new();
    loop {
        let line = match read_line(r, deadline) {
            Ok(l) => l,
            Err(HttpError::Closed) => {
                return Err(HttpError::Malformed("eof inside headers".into()))
            }
            Err(e) => return Err(e),
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooLarge("header count"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad content-length `{v}`")))?,
        None => 0,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge("body"));
    }
    let mut body = vec![0u8; content_length];
    let mut filled = 0;
    while filled < content_length {
        match r.read(&mut body[filled..]) {
            // EOF where body bytes were promised: a truncated request,
            // answered 400 — not a silent connection drop.
            Ok(0) => return Err(HttpError::Malformed("eof inside body".into())),
            Ok(n) => {
                filled += n;
                // Same slowloris guard as in `read_line`: steady small
                // chunks never trip the socket timeout on their own.
                if filled < content_length && Instant::now() >= deadline {
                    return Err(HttpError::RequestTimeout);
                }
            }
            Err(e) => deadline_tick(e, deadline)?,
        }
    }
    Ok(Request {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        body,
    })
}

/// Result of attempting to parse one request out of a byte buffer.
/// The event-driven path's counterpart to [`read_request`]: the caller
/// accumulates bytes as they arrive and re-parses from the front.
#[derive(Debug)]
pub enum Parse {
    /// The buffer holds a prefix of a valid request; feed more bytes.
    Partial,
    /// One complete request; `consumed` bytes of the buffer belong to it
    /// (pipelined peers may have more requests behind it).
    Complete { req: Request, consumed: usize },
    /// The buffer can never become a valid request — the connection is
    /// done after the error response.
    Bad(HttpError),
}

/// Take one CRLF- (or LF-) terminated line starting at `*pos`, advancing
/// `*pos` past the terminator. `Ok(None)` means the line is still
/// incomplete — but the size limit is enforced even then, so an
/// unterminated flood fails fast instead of buffering forever.
fn take_line(buf: &[u8], pos: &mut usize) -> Result<Option<String>, HttpError> {
    let rest = &buf[*pos..];
    match rest.iter().position(|&b| b == b'\n') {
        Some(i) => {
            if i > MAX_LINE_BYTES {
                return Err(HttpError::TooLarge("header line"));
            }
            let mut line = &rest[..i];
            if line.last() == Some(&b'\r') {
                line = &line[..line.len() - 1];
            }
            *pos += i + 1;
            match std::str::from_utf8(line) {
                Ok(s) => Ok(Some(s.to_string())),
                Err(_) => Err(HttpError::Malformed("non-UTF-8 header line".into())),
            }
        }
        None => {
            if rest.len() > MAX_LINE_BYTES {
                return Err(HttpError::TooLarge("header line"));
            }
            Ok(None)
        }
    }
}

/// Parse one request from the front of `buf` without consuming it —
/// the incremental twin of [`read_request`], accepting exactly the same
/// grammar and enforcing the same limits (checked against the partial
/// prefix too, so a hostile peer cannot balloon the buffer by never
/// finishing a line). Timeouts are not this function's concern: the
/// connection layer tracks when the first byte arrived and gives up on
/// its own clock.
pub fn parse_request_bytes(buf: &[u8]) -> Parse {
    let mut pos = 0usize;
    macro_rules! line {
        () => {
            match take_line(buf, &mut pos) {
                Ok(Some(l)) => l,
                Ok(None) => return Parse::Partial,
                Err(e) => return Parse::Bad(e),
            }
        };
    }
    let request_line = line!();
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Parse::Bad(HttpError::Malformed(format!(
                "bad request line `{request_line}`"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Parse::Bad(HttpError::Malformed(format!("bad version `{version}`")));
    }
    let mut headers = Vec::new();
    loop {
        let l = line!();
        if l.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Parse::Bad(HttpError::TooLarge("header count"));
        }
        let Some((name, value)) = l.split_once(':') else {
            return Parse::Bad(HttpError::Malformed(format!("bad header `{l}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return Parse::Bad(HttpError::Malformed(format!("bad content-length `{v}`"))),
        },
        None => 0,
    };
    if content_length > MAX_BODY_BYTES {
        return Parse::Bad(HttpError::TooLarge("body"));
    }
    if buf.len() - pos < content_length {
        return Parse::Partial;
    }
    let body = buf[pos..pos + content_length].to_vec();
    Parse::Complete {
        req: Request {
            method: method.to_string(),
            target: target.to_string(),
            headers,
            body,
        },
        consumed: pos + content_length,
    }
}

/// Canonical reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Write one fixed-length response. `close` controls the `Connection`
/// header; the caller owns actually closing the stream.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    close: bool,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        status,
        reason(status),
        content_type,
        body.len(),
        if close { "close" } else { "keep-alive" },
    );
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(bytes), Duration::from_secs(5))
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(b"POST /v1/predict HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"a\"")
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path(), "/v1/predict");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"{\"a\"");
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_get_without_body_and_query() {
        let req = parse(b"GET /metrics?x=1 HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path(), "/metrics");
        assert!(req.body.is_empty());
        assert!(req.wants_close());
    }

    #[test]
    fn tolerates_bare_lf_lines() {
        let req = parse(b"GET /healthz HTTP/1.1\nHost: y\n\n").unwrap();
        assert_eq!(req.path(), "/healthz");
    }

    #[test]
    fn clean_eof_is_closed() {
        assert!(matches!(parse(b""), Err(HttpError::Closed)));
    }

    #[test]
    fn rejects_malformed() {
        assert!(matches!(
            parse(b"NOT_A_REQUEST\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/2\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nContent-Length: pony\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_oversize_body_declaration() {
        let req = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse(req.as_bytes()),
            Err(HttpError::TooLarge("body"))
        ));
    }

    #[test]
    fn truncated_body_is_malformed() {
        // A peer that promises 10 bytes and hangs up after 5 sent a
        // *malformed request* (gets a 400), not an invisible I/O blip.
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpError::Malformed(m)) if m.contains("body")
        ));
    }

    #[test]
    fn trickled_request_hits_cumulative_deadline() {
        use std::io::Write as _;
        use std::net::{TcpListener, TcpStream};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // First byte lands, then the peer stalls far past the
            // server's request-read deadline.
            let _ = s.write_all(b"G");
            std::thread::sleep(Duration::from_millis(700));
            drop(s);
        });
        let (stream, _) = listener.accept().unwrap();
        // Per-read timeout far smaller than the trickle stall: without
        // the cumulative deadline this loop would retry forever.
        stream
            .set_read_timeout(Some(Duration::from_millis(25)))
            .unwrap();
        let t0 = Instant::now();
        let err = read_request(&mut BufReader::new(stream), Duration::from_millis(150))
            .expect_err("trickled request must not parse");
        assert!(
            matches!(err, HttpError::RequestTimeout),
            "expected RequestTimeout, got {err}"
        );
        assert!(
            t0.elapsed() < Duration::from_millis(600),
            "deadline did not bound the read: {:?}",
            t0.elapsed()
        );
        writer.join().unwrap();
    }

    #[test]
    fn response_bytes_shape() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    /// Incremental parse of a byte-at-a-time feed must agree exactly
    /// with the blocking reader on every accepted corpus entry.
    #[test]
    fn incremental_parse_matches_blocking_reader_at_every_split() {
        let corpus: &[&[u8]] = &[
            b"POST /v1/predict HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"a\"",
            b"GET /metrics?x=1 HTTP/1.1\r\nConnection: close\r\n\r\n",
            b"GET /healthz HTTP/1.1\nHost: y\n\n",
            b"POST /v1/search HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
        ];
        for bytes in corpus {
            let blocking = parse(bytes).unwrap();
            for split in 0..bytes.len() {
                // Every proper prefix is Partial...
                assert!(
                    matches!(parse_request_bytes(&bytes[..split]), Parse::Partial),
                    "prefix of len {split} not Partial"
                );
                let _ = split;
            }
            // ...and the full buffer parses to the same request with
            // every byte accounted for.
            match parse_request_bytes(bytes) {
                Parse::Complete { req, consumed } => {
                    assert_eq!(consumed, bytes.len());
                    assert_eq!(req.method, blocking.method);
                    assert_eq!(req.target, blocking.target);
                    assert_eq!(req.headers, blocking.headers);
                    assert_eq!(req.body, blocking.body);
                }
                other => panic!("full buffer did not complete: {other:?}"),
            }
        }
    }

    #[test]
    fn incremental_parse_handles_pipelined_requests() {
        let bytes: &[u8] =
            b"GET /healthz HTTP/1.1\r\n\r\nPOST /v1/predict HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}";
        let Parse::Complete { req, consumed } = parse_request_bytes(bytes) else {
            panic!("first request incomplete");
        };
        assert_eq!(req.path(), "/healthz");
        let Parse::Complete { req, consumed: c2 } = parse_request_bytes(&bytes[consumed..]) else {
            panic!("second request incomplete");
        };
        assert_eq!(req.path(), "/v1/predict");
        assert_eq!(req.body, b"{}");
        assert_eq!(consumed + c2, bytes.len());
    }

    #[test]
    fn incremental_parse_enforces_limits_on_partial_prefixes() {
        // An unterminated request line past the limit fails *before* a
        // newline ever shows up.
        let flood = vec![b'A'; MAX_LINE_BYTES + 2];
        assert!(matches!(
            parse_request_bytes(&flood),
            Parse::Bad(HttpError::TooLarge("header line"))
        ));
        // Oversize declared body fails at the header, not after
        // buffering the body.
        let oversize = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse_request_bytes(oversize.as_bytes()),
            Parse::Bad(HttpError::TooLarge("body"))
        ));
        // Malformed verdicts match the blocking reader's.
        assert!(matches!(
            parse_request_bytes(b"NOT_A_REQUEST\r\n\r\n"),
            Parse::Bad(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse_request_bytes(b"GET / HTTP/2\r\n\r\n"),
            Parse::Bad(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn keepalive_reads_two_requests_from_one_stream() {
        let bytes: &[u8] =
            b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut r = BufReader::new(bytes);
        let budget = Duration::from_secs(5);
        assert_eq!(read_request(&mut r, budget).unwrap().path(), "/healthz");
        let second = read_request(&mut r, budget).unwrap();
        assert_eq!(second.path(), "/metrics");
        assert!(second.wants_close());
        assert!(matches!(
            read_request(&mut r, budget),
            Err(HttpError::Closed)
        ));
    }
}
