//! Minimal SIGINT/SIGTERM hookup without a signal crate.
//!
//! `std` already links libc, so the classic `signal(2)` entry point is
//! available to declare directly. The handler does the only
//! async-signal-safe thing we need: store to a static [`AtomicBool`]
//! that the serve loop polls between requests.

use std::sync::atomic::{AtomicBool, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    const SIGINT: i32 = 2;
    const SIGPIPE: i32 = 13;
    const SIGTERM: i32 = 15;
    const SIG_DFL: usize = 0;
    const SIG_IGN: usize = 1;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        super::REQUESTED.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }

    pub fn sigpipe(ignore: bool) {
        unsafe {
            signal(SIGPIPE, if ignore { SIG_IGN } else { SIG_DFL });
        }
    }
}

#[cfg(not(unix))]
mod imp {
    // No portable std-only hook here; ctrl-c simply terminates the
    // process, which is acceptable for the non-unix fallback.
    pub fn install() {}
    pub fn sigpipe(_ignore: bool) {}
}

/// Route SIGINT and SIGTERM into [`shutdown_requested`]. Idempotent.
pub fn install() {
    imp::install();
}

/// Whether a shutdown signal has arrived since [`install`].
pub fn shutdown_requested() -> bool {
    REQUESTED.load(Ordering::SeqCst)
}

/// Restore the default SIGPIPE disposition (std ignores it at startup),
/// so a CLI writing into a closed pipe (`hms list | head`) dies quietly
/// like any unix tool instead of panicking on the write error.
pub fn sigpipe_default() {
    imp::sigpipe(false);
}

/// Ignore SIGPIPE again — the server's requirement: a peer closing
/// mid-write must surface as an `io::Error`, never kill the process.
pub fn sigpipe_ignore() {
    imp::sigpipe(true);
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    extern "C" {
        fn raise(signum: i32) -> i32;
    }

    #[test]
    fn raise_sigterm_sets_flag() {
        install();
        assert!(!shutdown_requested() || true); // other tests may share the static
        unsafe {
            raise(15);
        }
        assert!(shutdown_requested());
    }
}
