//! A minimal readiness poller over nonblocking sockets — the event
//! loop's only blocking point — plus a cross-thread [`Waker`].
//!
//! The workspace is hermetic (no crates.io deps), so there is no `mio`
//! to lean on. On unix, `std` already links libc, and the classic
//! `poll(2)` entry point can be declared directly — the same trick
//! [`crate::signal`] uses for `signal(2)`. Everything else (interest
//! registration, readiness reporting) is plain Rust over the raw fds
//! `std::os::fd` hands out.
//!
//! On non-unix targets a portable fallback reports every registered
//! socket as possibly-ready after a short sleep; the event loop already
//! has to tolerate spurious readiness (a nonblocking read that returns
//! `WouldBlock` is simply not ready yet), so the fallback is merely
//! slower, never wrong.

use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// What one socket is waiting for, and (after [`Poller::wait`]) what it
/// got. The event loop owns a `Vec<Interest>` mirroring its connection
/// table and rebuilds the flags each iteration — at the hundreds of
/// connections this server targets, the O(n) scan *is* `poll(2)`'s own
/// cost model, so nothing fancier is warranted.
#[derive(Debug, Clone, Copy)]
pub struct Interest {
    #[cfg(unix)]
    fd: std::os::fd::RawFd,
    /// Wait for readability.
    pub read: bool,
    /// Wait for writability.
    pub write: bool,
    /// Out: the socket is (possibly) readable.
    pub readable: bool,
    /// Out: the socket is (possibly) writable.
    pub writable: bool,
    /// Out: the peer hung up or the socket errored; the next read will
    /// surface the details.
    pub failed: bool,
}

impl Interest {
    /// Interest in `source` (a listener, stream, or the waker's read
    /// half), initially waiting for readability only.
    pub fn new(source: &impl Pollable) -> Interest {
        Interest {
            #[cfg(unix)]
            fd: source.raw_fd(),
            read: true,
            write: false,
            readable: false,
            writable: false,
            failed: false,
        }
    }
}

/// Anything the poller can watch. Implemented for the two socket types
/// the server uses; the trait exists so [`Interest::new`] works on both
/// without the caller touching `cfg(unix)` fd plumbing.
pub trait Pollable {
    #[cfg(unix)]
    fn raw_fd(&self) -> std::os::fd::RawFd;
}

impl Pollable for TcpStream {
    #[cfg(unix)]
    fn raw_fd(&self) -> std::os::fd::RawFd {
        std::os::fd::AsRawFd::as_raw_fd(self)
    }
}

impl Pollable for TcpListener {
    #[cfg(unix)]
    fn raw_fd(&self) -> std::os::fd::RawFd {
        std::os::fd::AsRawFd::as_raw_fd(self)
    }
}

#[cfg(unix)]
mod imp {
    use super::Interest;
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    #[cfg(any(target_os = "linux", target_os = "android"))]
    type Nfds = u64;
    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    type Nfds = u32;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: Nfds, timeout: i32) -> i32;
    }

    pub struct Poller {
        fds: Vec<PollFd>,
    }

    impl Poller {
        pub fn new() -> Poller {
            Poller { fds: Vec::new() }
        }

        pub fn wait(
            &mut self,
            interests: &mut [Interest],
            timeout: Duration,
        ) -> std::io::Result<()> {
            self.fds.clear();
            for it in interests.iter_mut() {
                it.readable = false;
                it.writable = false;
                it.failed = false;
                let mut events = 0i16;
                if it.read {
                    events |= POLLIN;
                }
                if it.write {
                    events |= POLLOUT;
                }
                self.fds.push(PollFd {
                    fd: it.fd,
                    events,
                    revents: 0,
                });
            }
            let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
            let n = unsafe { poll(self.fds.as_mut_ptr(), self.fds.len() as Nfds, ms) };
            if n < 0 {
                let e = std::io::Error::last_os_error();
                // EINTR is a non-event: the loop re-polls anyway.
                if e.kind() == std::io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for (it, pfd) in interests.iter_mut().zip(&self.fds) {
                it.readable = pfd.revents & POLLIN != 0;
                it.writable = pfd.revents & POLLOUT != 0;
                it.failed = pfd.revents & (POLLERR | POLLHUP) != 0;
            }
            Ok(())
        }
    }
}

#[cfg(not(unix))]
mod imp {
    use super::Interest;
    use std::time::Duration;

    /// Portable fallback: sleep briefly, then report everything as
    /// possibly-ready. Spurious readiness is harmless (nonblocking I/O
    /// answers `WouldBlock`), it just costs extra syscalls.
    pub struct Poller;

    impl Poller {
        pub fn new() -> Poller {
            Poller
        }

        pub fn wait(
            &mut self,
            interests: &mut [Interest],
            timeout: Duration,
        ) -> std::io::Result<()> {
            std::thread::sleep(timeout.min(Duration::from_millis(2)));
            for it in interests.iter_mut() {
                it.readable = it.read;
                it.writable = it.write;
                it.failed = false;
            }
            Ok(())
        }
    }
}

/// The readiness poller. One per event-loop thread.
pub struct Poller(imp::Poller);

impl Poller {
    pub fn new() -> Poller {
        Poller(imp::Poller::new())
    }

    /// Block until at least one interest is ready, `timeout` passes, or
    /// a signal interrupts. Readiness flags are written back into
    /// `interests`; the `read`/`write` request flags are left untouched.
    pub fn wait(&mut self, interests: &mut [Interest], timeout: Duration) -> std::io::Result<()> {
        self.0.wait(interests, timeout)
    }
}

impl Default for Poller {
    fn default() -> Self {
        Poller::new()
    }
}

/// Wakes an event loop blocked in [`Poller::wait`] from another thread.
///
/// Built on a connected loopback `TcpStream` pair (the only portable,
/// std-only self-pipe): `wake` writes one byte to the send half, which
/// makes the receive half — registered in the loop's poll set — report
/// readable. The receive side is drained with [`Waker::drain`]. Wakes
/// coalesce naturally: a full socket buffer means a wake is already
/// pending, which is exactly the semantic wanted.
pub struct Waker {
    tx: TcpStream,
    rx: TcpStream,
}

impl Waker {
    pub fn new() -> std::io::Result<Waker> {
        // A listener bound to an ephemeral loopback port, one connect,
        // one accept — then the listener is dropped, leaving a pipe.
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let tx = TcpStream::connect(listener.local_addr()?)?;
        let (rx, _) = listener.accept()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        tx.set_nodelay(true)?;
        Ok(Waker { tx, rx })
    }

    /// The half the event loop registers for readability.
    pub fn receiver(&self) -> &TcpStream {
        &self.rx
    }

    /// Wake the owning event loop. Callable from any thread (`&TcpStream`
    /// is `Write`); failures are ignored — a full buffer *is* a pending
    /// wake, and a closed pipe means the loop is already gone.
    pub fn wake(&self) {
        let _ = (&self.tx).write(&[1]);
    }

    /// Drain pending wake bytes after the receive half polled readable.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while let Ok(n) = std::io::Read::read(&mut { &self.rx }, &mut buf) {
            if n == 0 {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::time::Instant;

    #[test]
    fn waker_wakes_a_blocked_poll() {
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        let mut poller = Poller::new();
        let mut interests = vec![Interest::new(waker.receiver())];

        // Nothing pending: a short wait times out quietly.
        poller
            .wait(&mut interests, Duration::from_millis(20))
            .unwrap();

        let w = std::sync::Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            w.wake();
        });
        let t0 = Instant::now();
        // Generous timeout: the wake must cut it short.
        poller.wait(&mut interests, Duration::from_secs(5)).unwrap();
        assert!(
            t0.elapsed() < Duration::from_secs(4),
            "wake did not interrupt the wait"
        );
        waker.drain();
        t.join().unwrap();
    }

    #[test]
    fn poll_reports_readable_stream_data() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let mut poller = Poller::new();
        let mut interests = vec![Interest::new(&server_side)];
        std::io::Write::write_all(&mut client, b"x").unwrap();
        client.flush().unwrap();
        // Poll until the byte shows up (a single wait is already enough
        // on unix; the loop keeps the fallback honest).
        let t0 = Instant::now();
        loop {
            poller
                .wait(&mut interests, Duration::from_millis(50))
                .unwrap();
            if interests[0].readable {
                break;
            }
            assert!(t0.elapsed() < Duration::from_secs(5), "byte never surfaced");
        }
        let mut buf = [0u8; 8];
        let n = (&server_side).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"x");
    }

    #[test]
    fn drain_clears_coalesced_wakes() {
        let waker = Waker::new().unwrap();
        for _ in 0..10 {
            waker.wake();
        }
        let mut poller = Poller::new();
        let mut interests = vec![Interest::new(waker.receiver())];
        poller
            .wait(&mut interests, Duration::from_millis(100))
            .unwrap();
        assert!(interests[0].readable);
        waker.drain();
        // After a drain there is nothing left to read.
        poller
            .wait(&mut interests, Duration::from_millis(20))
            .unwrap();
        if interests[0].readable {
            // Fallback poller reports spuriously; a real read must say
            // WouldBlock.
            let mut buf = [0u8; 8];
            let r = std::io::Read::read(&mut waker.receiver(), &mut buf);
            assert!(matches!(r, Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock));
        }
    }
}
