//! Adversarial-corpus property suite for the JSON wire codec.
//!
//! The unit properties inside `wire.rs` cover round-tripping and
//! printable-ASCII garbage; this suite feeds the codec the *curated*
//! hostility of `hms_faults::corpus::adversarial_json` — truncation,
//! invalid UTF-8, pathological nesting, out-of-range numbers, NUL
//! bytes, duplicate keys — plus unrestricted byte soup. The contract
//! under all of it is total: `decode` returns `Ok` or a typed
//! `WireError`, never panics, and anything it accepts re-encodes
//! deterministically and round-trips.

use hms_faults::adversarial_json;
use hms_serve::wire::{decode, Json};
use hms_stats::proptest_lite::{check, Config};
use hms_stats::rng::Rng;

/// f64-bit-exact equality (`PartialEq` on `Json::Num` treats `-0.0 ==
/// 0.0`; the wire contract is stricter).
fn bit_eq(a: &Json, b: &Json) -> bool {
    match (a, b) {
        (Json::Num(x), Json::Num(y)) => x.to_bits() == y.to_bits(),
        (Json::Arr(x), Json::Arr(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(a, b)| bit_eq(a, b))
        }
        (Json::Obj(x), Json::Obj(y)) => {
            x.len() == y.len()
                && x.iter()
                    .zip(y)
                    .all(|((ka, va), (kb, vb))| ka == kb && bit_eq(va, vb))
        }
        _ => a == b,
    }
}

#[test]
fn decoder_is_total_over_the_adversarial_corpus() {
    // One corpus document per proptest case, so a failure prints the
    // case seed that regenerates exactly that document.
    check(
        "wire_adversarial_corpus",
        &Config::with_cases(512),
        |rng| {
            let doc = adversarial_json(rng.next_u64(), 1).remove(0);
            (String::from_utf8_lossy(&doc).into_owned(), doc)
        },
        |(text, raw)| {
            // Invalid UTF-8 never reaches `decode` in production (the
            // HTTP layer hands the body over as bytes and the API layer
            // rejects non-UTF-8 first); lossy replacement still probes
            // the decoder with the replacement-character shrapnel.
            if let Ok(exact) = std::str::from_utf8(raw) {
                let _ = decode(exact); // must return, not panic
            }
            match decode(text) {
                // Accepted documents must re-encode round-trip — a
                // parse that mangles the value is worse than an error.
                Ok(v) => {
                    let encoded = v.encode();
                    let back = decode(&encoded)
                        .map_err(|e| format!("re-decode of {encoded:?} failed: {e}"))?;
                    if !bit_eq(&v, &back) {
                        return Err(format!("round-trip drift: {v:?} -> {back:?}"));
                    }
                    if v.encode() != encoded {
                        return Err(format!("encoding of {v:?} is not deterministic"));
                    }
                    Ok(())
                }
                // A typed error is a documented outcome for every
                // family in the corpus.
                Err(_) => Ok(()),
            }
        },
    );
}

#[test]
fn decoder_is_total_over_raw_byte_soup() {
    // Unrestricted bytes — including NUL, lone surrogate escapes and
    // invalid UTF-8 after lossy conversion — beyond what the curated
    // corpus families construct.
    check(
        "wire_byte_soup",
        &Config::with_cases(512),
        |rng| {
            let n = rng.gen_range(0u64..200) as usize;
            let bytes: Vec<u8> = (0..n).map(|_| rng.gen_range(0u64..256) as u8).collect();
            String::from_utf8_lossy(&bytes).into_owned()
        },
        |s| {
            let _ = decode(s); // total: Ok or WireError, never a panic
            Ok(())
        },
    );
}

#[test]
fn nesting_bombs_error_before_the_stack_does() {
    // The deep_nesting family caps at 256 levels; go far past it to pin
    // the decoder's recursion guard rather than the corpus's politeness.
    for depth in [1usize << 10, 1 << 14] {
        let mut doc = String::with_capacity(depth * 2 + 1);
        for _ in 0..depth {
            doc.push('[');
        }
        doc.push('0');
        for _ in 0..depth {
            doc.push(']');
        }
        assert!(
            decode(&doc).is_err(),
            "depth {depth} should exceed the decoder's depth cap"
        );
    }
}

#[test]
fn corpus_is_replayable_from_its_seed() {
    // The chaos gate in scripts/ci.sh pins seeds; the corpus must obey.
    let mut rng = Rng::seed_from_u64(0xADC0_0DE);
    let seed = rng.next_u64();
    assert_eq!(adversarial_json(seed, 32), adversarial_json(seed, 32));
}
