//! The cycle-level GPU machine: SMs, warp scheduler, memory pipeline.
//!
//! This is the workspace's stand-in for the paper's Tesla K80 +
//! `nvprof`: it executes a concrete trace and reports "measured" time and
//! hardware events. The fidelity target is the set of effects the paper's
//! models reason about — issue slots including instruction replays,
//! addressing-mode instruction expansion, per-space cache behaviour,
//! shared L2 interference, and a GDDR5 back end with row buffers and
//! per-bank queues — not a full GPU microarchitecture.
//!
//! Execution model, per SM and cycle:
//!
//! * up to `issue_width` instructions issue per cycle, picked from ready
//!   resident warps in loose round-robin order;
//! * a memory instruction with `r` replays occupies `1 + r` issue slots;
//!   double-width arithmetic occupies two slots per instruction;
//! * `AddrCalc` ops expand to their placement-dependent integer
//!   instruction count (Section III-B's addressing-mode difference);
//! * a warp issuing a load tracks its completion cycle; `WaitLoads`
//!   blocks the warp until every outstanding load returned; at most
//!   `max_pending_per_warp` loads may be in flight;
//! * `SyncThreads` blocks the warp until every live warp of its block
//!   arrived;
//! * loads traverse space-specific paths: shared (bank conflicts),
//!   constant (per-SM cache, broadcast), texture (per-SM cache), global
//!   (coalescing) — off-chip paths continue through the shared L2 into
//!   the GDDR5 controller, whose queuing and row-buffer state produce
//!   the latency variation the paper's `T_mem` model captures.
//!
//! The main loop is event-driven: each SM carries a wake-up cycle, and
//! simulated time jumps to the earliest wake-up, so fully-stalled phases
//! cost no host time.

use hms_cache::{ConstantCache, L2Cache, L2Source, SetAssocCache, SharedMemBanks, TextureCache};
use hms_dram::{AddressMapping, MemoryController};
use hms_trace::{coalesce, CInstr, CMemRef, ConcreteTrace, ConcreteWarp};
use hms_types::{GpuConfig, HmsError, MemorySpace};

use crate::copy::{shared_init_prologue, shared_writeback_epilogue};
use crate::events::EventSet;

/// Simulation options.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Record per-bank DRAM arrival streams (Figure 4 analysis).
    pub record_dram_arrivals: bool,
    /// Abort if the kernel has not finished after this many cycles.
    pub max_cycles: u64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            record_dram_arrivals: false,
            max_cycles: 1 << 34,
        }
    }
}

/// Result of simulating one kernel launch.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Elapsed cycles — the "measured execution time" every model
    /// prediction is compared against.
    pub cycles: u64,
    /// Elapsed wall time in nanoseconds at the configured core clock.
    pub time_ns: f64,
    pub events: EventSet,
    /// DRAM statistics (per-bank mix, arrival streams when recorded).
    pub dram: hms_dram::DramStats,
}

/// Simulate `trace` on the machine described by `cfg`.
pub fn simulate(
    trace: &ConcreteTrace,
    cfg: &GpuConfig,
    opts: &SimOptions,
) -> Result<SimResult, HmsError> {
    Machine::new(trace, cfg, opts).run()
}

/// Convenience: simulate with default options.
pub fn simulate_default(trace: &ConcreteTrace, cfg: &GpuConfig) -> Result<SimResult, HmsError> {
    simulate(trace, cfg, &SimOptions::default())
}

// ---------------------------------------------------------------------
// internal state
// ---------------------------------------------------------------------

struct WarpCtx<'t> {
    prologue: Vec<CInstr>,
    body: &'t [CInstr],
    epilogue: Vec<CInstr>,
    /// Virtual pc over prologue ++ body ++ epilogue.
    pc: usize,
    /// Progress inside the current instruction: ALU instructions already
    /// issued from a run, or replay slots already consumed by a memory
    /// instruction.
    sub: u32,
    /// Extra issue slots the current memory instruction still owes
    /// (replays), set when `sub == 0`.
    replays_left: u32,
    /// Completion cycles of outstanding loads.
    pending: Vec<u64>,
    /// Waiting at a block barrier.
    at_barrier: bool,
    /// Earliest cycle the warp may issue again.
    next_ready: u64,
    done: bool,
    block_slot: usize,
    /// Grid coordinates, needed to resolve local-memory addresses.
    block: u32,
    warp: u32,
}

impl<'t> WarpCtx<'t> {
    fn at(&self, pc: usize) -> Option<&CInstr> {
        let p = self.prologue.len();
        let b = self.body.len();
        if pc < p {
            Some(&self.prologue[pc])
        } else if pc < p + b {
            Some(&self.body[pc - p])
        } else {
            self.epilogue.get(pc - p - b)
        }
    }

    fn prune_pending(&mut self, now: u64) {
        self.pending.retain(|&c| c > now);
    }
}

struct BlockCtx {
    alive: u32,
    arrived: u32,
}

struct Sm<'t> {
    warps: Vec<WarpCtx<'t>>,
    blocks: Vec<BlockCtx>,
    const_cache: ConstantCache,
    tex_cache: TextureCache,
    l1: SetAssocCache,
    shared_banks: SharedMemBanks,
    /// Round-robin scan start.
    rr: usize,
    wake: u64,
    /// Warps not yet finished.
    live: usize,
}

struct Machine<'t> {
    trace: &'t ConcreteTrace,
    cfg: &'t GpuConfig,
    opts: &'t SimOptions,
    sms: Vec<Sm<'t>>,
    l2: L2Cache,
    dram: MemoryController,
    events: EventSet,
    /// Blocks grouped from the trace, indexed by block id.
    block_warps: Vec<Vec<&'t ConcreteWarp>>,
    next_block: usize,
    max_blocks_per_sm: usize,
}

impl<'t> Machine<'t> {
    fn new(trace: &'t ConcreteTrace, cfg: &'t GpuConfig, opts: &'t SimOptions) -> Self {
        let nblocks = trace.geometry.grid_blocks as usize;
        let mut block_warps: Vec<Vec<&ConcreteWarp>> = vec![Vec::new(); nblocks];
        for w in &trace.warps {
            block_warps[w.block as usize].push(w);
        }
        // Occupancy: warp count, block count and shared-memory limits.
        let wpb = trace.geometry.warps_per_block().max(1);
        let by_warps = (cfg.max_warps_per_sm / wpb).max(1) as usize;
        let by_blocks = cfg.max_blocks_per_sm as usize;
        let shared_per_block = trace.alloc.shared_bytes_per_block();
        let by_shared = cfg
            .shared_mem_bytes_per_sm
            .checked_div(shared_per_block)
            .map_or(usize::MAX, |b| (b as usize).max(1));
        let max_blocks_per_sm = by_warps.min(by_blocks).min(by_shared);

        let sms = (0..cfg.num_sms)
            .map(|_| Sm {
                warps: Vec::new(),
                blocks: Vec::new(),
                const_cache: ConstantCache::new(cfg.const_cache),
                tex_cache: TextureCache::new(cfg.tex_cache),
                l1: SetAssocCache::new(cfg.l1_cache),
                shared_banks: SharedMemBanks::new(cfg.shared_banks),
                rr: 0,
                wake: 0,
                live: 0,
            })
            .collect();
        let dram = MemoryController::new(
            AddressMapping::k80_like(cfg.dram.total_banks()),
            cfg.dram,
            opts.record_dram_arrivals,
        );
        Machine {
            trace,
            cfg,
            opts,
            sms,
            l2: L2Cache::new(cfg.l2_cache),
            dram,
            events: EventSet::default(),
            block_warps,
            next_block: 0,
            max_blocks_per_sm,
        }
    }

    fn assign_block(&mut self, sm_id: usize, now: u64) -> bool {
        if self.next_block >= self.block_warps.len() {
            return false;
        }
        let block_id = self.next_block;
        self.next_block += 1;
        let warps = &self.block_warps[block_id];
        let sm = &mut self.sms[sm_id];
        let slot = sm.blocks.len();
        sm.blocks.push(BlockCtx {
            alive: warps.len() as u32,
            arrived: 0,
        });
        for w in warps {
            let prologue = shared_init_prologue(self.trace, w.block, w.warp, self.cfg);
            let epilogue = shared_writeback_epilogue(self.trace, w.block, w.warp, self.cfg);
            sm.warps.push(WarpCtx {
                prologue,
                body: &w.instrs,
                epilogue,
                pc: 0,
                sub: 0,
                replays_left: 0,
                pending: Vec::new(),
                at_barrier: false,
                next_ready: now,
                done: false,
                block_slot: slot,
                block: w.block,
                warp: w.warp,
            });
            sm.live += 1;
        }
        self.events.blocks_launched += 1;
        self.events.warps_launched += warps.len() as u64;
        true
    }

    fn run(mut self) -> Result<SimResult, HmsError> {
        // Initial block distribution: fill each SM to its occupancy limit
        // round-robin, mirroring the hardware's greedy block scheduler.
        'outer: for _round in 0..self.max_blocks_per_sm {
            for sm_id in 0..self.sms.len() {
                if !self.assign_block(sm_id, 0) {
                    break 'outer;
                }
            }
        }

        let mut finish: u64 = 0;
        loop {
            let Some(now) = self.sms.iter().filter(|s| s.live > 0).map(|s| s.wake).min() else {
                break;
            };
            if now > self.opts.max_cycles {
                return Err(HmsError::InvalidInput(format!(
                    "simulation exceeded {} cycles (deadlock or runaway kernel?)",
                    self.opts.max_cycles
                )));
            }
            for sm_id in 0..self.sms.len() {
                if self.sms[sm_id].live > 0 && self.sms[sm_id].wake <= now {
                    self.step_sm(sm_id, now);
                    finish = finish.max(now);
                }
            }
        }

        // Elapsed time: the last cycle any SM made progress. Fire-and-
        // forget stores still draining in DRAM are excluded, matching how
        // a kernel's reported time ends at its last retired instruction.
        let cycles = finish + 1;
        self.events.elapsed_cycles = cycles;

        // Fold DRAM statistics into the event set.
        let d = self.dram.stats();
        let (h, m, c) = d.row_buffer_totals();
        self.events.dram_requests = d.total_requests();
        self.events.row_buffer_hits = h;
        self.events.row_buffer_misses = m;
        self.events.row_buffer_conflicts = c;
        self.events.dram_total_latency = d.banks.iter().map(|b| b.total_latency).sum();
        self.events.dram_total_queuing = d.banks.iter().map(|b| b.total_queuing).sum();
        self.events.l2_transactions = self.l2.transactions();
        self.events.l2_misses = self.l2.misses();
        self.events.l2_from_global = self.l2.transactions_from(L2Source::Global);
        self.events.l2_from_tex = self.l2.transactions_from(L2Source::Texture);
        self.events.l2_from_const = self.l2.transactions_from(L2Source::Constant);
        self.events.l2_writebacks = self.l2.writebacks();

        Ok(SimResult {
            cycles,
            time_ns: cycles as f64 / self.cfg.core_clock_ghz,
            events: self.events,
            dram: self.dram.stats().clone(),
        })
    }

    /// Issue up to `issue_width` slots on one SM at cycle `now`.
    fn step_sm(&mut self, sm_id: usize, now: u64) {
        let mut issued_any = false;
        let width = self.cfg.issue_width;
        let mut slots = 0u32;
        while slots < width {
            match self.issue_one(sm_id, now) {
                IssueOutcome::Issued { double_width } => {
                    issued_any = true;
                    slots += if double_width { 2 } else { 1 };
                }
                IssueOutcome::Nothing => break,
            }
        }
        let sm = &mut self.sms[sm_id];
        if sm.live == 0 {
            sm.wake = u64::MAX;
            return;
        }
        if issued_any {
            sm.wake = now + 1;
        } else {
            // Fully stalled: jump to the earliest event that can unblock
            // a warp.
            let mut wake = u64::MAX;
            for w in &sm.warps {
                if w.done || w.at_barrier {
                    continue;
                }
                // A warp that could not issue is blocked either by its
                // pipeline gap (`next_ready`) or by outstanding loads
                // (WaitLoads / full load queue) — wake at whichever
                // event applies.
                let cand = if w.next_ready > now {
                    w.next_ready
                } else if let Some(&min_pending) = w.pending.iter().min() {
                    min_pending
                } else {
                    now + 1
                };
                wake = wake.min(cand.max(now + 1));
            }
            debug_assert!(wake > now, "stalled SM must make progress");
            if wake != u64::MAX {
                self.events.stall_cycles += wake - now;
            }
            sm.wake = wake;
        }
    }

    /// Try to issue one instruction (or replay slot) from some ready warp.
    fn issue_one(&mut self, sm_id: usize, now: u64) -> IssueOutcome {
        let n = self.sms[sm_id].warps.len();
        for scan in 0..n {
            let wi = (self.sms[sm_id].rr + scan) % n;
            let outcome = self.try_issue_warp(sm_id, wi, now);
            if let IssueOutcome::Issued { .. } = outcome {
                self.sms[sm_id].rr = (wi + 1) % n;
                return outcome;
            }
        }
        IssueOutcome::Nothing
    }

    fn try_issue_warp(&mut self, sm_id: usize, wi: usize, now: u64) -> IssueOutcome {
        // Fast readiness checks.
        {
            let w = &mut self.sms[sm_id].warps[wi];
            if w.done || w.at_barrier || w.next_ready > now {
                return IssueOutcome::Nothing;
            }
            w.prune_pending(now);
        }
        loop {
            let w = &self.sms[sm_id].warps[wi];
            let Some(instr) = w.at(w.pc) else {
                self.finish_warp(sm_id, wi, now);
                return IssueOutcome::Nothing;
            };
            match instr {
                CInstr::WaitLoads => {
                    let w = &mut self.sms[sm_id].warps[wi];
                    if w.pending.is_empty() {
                        w.pc += 1;
                        continue; // free: no issue slot for a wait
                    }
                    return IssueOutcome::Nothing;
                }
                CInstr::Alu { kind, count } => {
                    let count = u32::from(*count);
                    if count == 0 {
                        self.sms[sm_id].warps[wi].pc += 1;
                        continue;
                    }
                    let kind = *kind;
                    return self.issue_alu(sm_id, wi, now, kind, count);
                }
                CInstr::AddrCalc { array, count } => {
                    let expanded = self.trace.addr_calc_expansion(*array, *count) as u32;
                    if expanded == 0 {
                        self.sms[sm_id].warps[wi].pc += 1;
                        continue;
                    }
                    return self.issue_addr_calc(sm_id, wi, now, expanded);
                }
                CInstr::SyncThreads => {
                    return self.issue_sync(sm_id, wi, now);
                }
                CInstr::Mem(_) | CInstr::Local { .. } => {
                    return self.issue_mem(sm_id, wi, now);
                }
            }
        }
    }

    fn issue_alu(
        &mut self,
        sm_id: usize,
        wi: usize,
        now: u64,
        kind: hms_trace::concrete::AluKind,
        count: u32,
    ) -> IssueOutcome {
        use hms_trace::concrete::AluKind;
        let double = matches!(kind, AluKind::Fp64);
        {
            let e = &mut self.events;
            e.inst_issued += 1;
            e.issue_slots += if double { 2 } else { 1 };
            e.inst_executed += 1;
            match kind {
                AluKind::Int => e.inst_integer += 1,
                AluKind::Fp32 => e.inst_fp32 += 1,
                AluKind::Fp64 => {
                    e.inst_fp64 += 1;
                    e.replay_double_width += 1;
                }
                AluKind::Sfu => e.inst_sfu += 1,
            }
        }
        let gap = self.alu_gap();
        let w = &mut self.sms[sm_id].warps[wi];
        w.sub += 1;
        if w.sub >= count {
            w.pc += 1;
            w.sub = 0;
        }
        w.next_ready = now + gap;
        IssueOutcome::Issued {
            double_width: double,
        }
    }

    fn issue_addr_calc(
        &mut self,
        sm_id: usize,
        wi: usize,
        now: u64,
        expanded: u32,
    ) -> IssueOutcome {
        self.events.inst_issued += 1;
        self.events.issue_slots += 1;
        self.events.inst_executed += 1;
        self.events.inst_integer += 1;
        let gap = self.alu_gap();
        let w = &mut self.sms[sm_id].warps[wi];
        w.sub += 1;
        if w.sub >= expanded {
            w.pc += 1;
            w.sub = 0;
        }
        w.next_ready = now + gap;
        IssueOutcome::Issued {
            double_width: false,
        }
    }

    fn issue_sync(&mut self, sm_id: usize, wi: usize, now: u64) -> IssueOutcome {
        self.events.inst_issued += 1;
        self.events.issue_slots += 1;
        self.events.inst_executed += 1;
        self.events.sync_count += 1;
        let slot = self.sms[sm_id].warps[wi].block_slot;
        {
            let w = &mut self.sms[sm_id].warps[wi];
            w.pc += 1;
            w.at_barrier = true;
            w.next_ready = now + 1;
        }
        let sm = &mut self.sms[sm_id];
        sm.blocks[slot].arrived += 1;
        if sm.blocks[slot].arrived >= sm.blocks[slot].alive {
            sm.blocks[slot].arrived = 0;
            for w in &mut sm.warps {
                if w.block_slot == slot {
                    w.at_barrier = false;
                }
            }
        }
        IssueOutcome::Issued {
            double_width: false,
        }
    }

    /// Per-warp issue gap after an arithmetic instruction: the pipeline
    /// latency divided by the warp's assumed ILP (paper Eq. 13–15 use the
    /// same two quantities).
    fn alu_gap(&self) -> u64 {
        ((self.cfg.avg_inst_lat as f64 / self.cfg.warp_ilp).ceil() as u64).max(1)
    }

    fn issue_mem(&mut self, sm_id: usize, wi: usize, now: u64) -> IssueOutcome {
        // Replay continuation: the op already executed, it just owes
        // issue slots.
        {
            let w = &mut self.sms[sm_id].warps[wi];
            if w.sub > 0 {
                self.events.inst_issued += 1;
                self.events.issue_slots += 1;
                self.events.ldst_issued += 1;
                w.sub += 1;
                if w.sub > w.replays_left {
                    w.pc += 1;
                    w.sub = 0;
                    w.replays_left = 0;
                }
                w.next_ready = now + 1;
                return IssueOutcome::Issued {
                    double_width: false,
                };
            }
        }
        // First slot: perform the access. Clone the lane addresses out to
        // appease the borrow checker (32 words, cheap).
        let instr = {
            let w = &self.sms[sm_id].warps[wi];
            w.at(w.pc)
                .expect("pc points at a memory instruction")
                .clone()
        };
        let (replays_and_completion, is_load) = match &instr {
            CInstr::Mem(m) => (None, !m.is_store),
            CInstr::Local { is_store, .. } => (Some(()), !is_store),
            _ => unreachable!("issue_mem on non-memory instruction"),
        };
        let _ = replays_and_completion;
        // LSU capacity: a full load queue stalls the warp.
        if is_load
            && self.sms[sm_id].warps[wi].pending.len() >= self.cfg.max_pending_per_warp as usize
        {
            return IssueOutcome::Nothing;
        }

        let (replays, completion) = match &instr {
            CInstr::Mem(m) => self.perform_access(sm_id, m, now),
            CInstr::Local { is_store, slots } => {
                let (block, warp) = {
                    let w = &self.sms[sm_id].warps[wi];
                    (w.block, w.warp)
                };
                self.perform_local(sm_id, block, warp, *is_store, slots, now)
            }
            _ => unreachable!(),
        };

        self.events.inst_issued += 1;
        self.events.issue_slots += 1;
        self.events.inst_executed += 1;
        self.events.ldst_issued += 1;
        self.events.ldst_executed += 1;

        let w = &mut self.sms[sm_id].warps[wi];
        if is_load {
            w.pending.push(completion);
        }
        if replays > 0 {
            w.replays_left = replays;
            w.sub = 1;
        } else {
            w.pc += 1;
        }
        w.next_ready = now + 1;
        IssueOutcome::Issued {
            double_width: false,
        }
    }

    /// Execute the memory semantics of one warp access; returns
    /// `(replays, completion_cycle)`.
    fn perform_access(&mut self, sm_id: usize, m: &CMemRef, now: u64) -> (u32, u64) {
        let lane_addrs: Vec<u64> = m.active_addrs().collect();
        if lane_addrs.is_empty() {
            return (0, now);
        }
        match m.space {
            MemorySpace::Shared => {
                let replays = self.sms[sm_id].shared_banks.access_warp(&lane_addrs);
                if m.is_store {
                    self.events.shared_st_requests += 1;
                } else {
                    self.events.shared_ld_requests += 1;
                }
                self.events.replay_shared_conflict += u64::from(replays);
                (replays, now + self.cfg.shared_lat + u64::from(replays))
            }
            MemorySpace::Constant => {
                let r = self.sms[sm_id].const_cache.access_warp(&lane_addrs);
                self.events.const_requests += 1;
                self.events.const_transactions += u64::from(r.transactions);
                self.events.const_cache_misses += u64::from(r.misses);
                self.events.replay_const_divergence += u64::from(r.transactions - 1);
                self.events.replay_const_miss += u64::from(r.misses);
                let mut completion = now + self.cfg.const_hit_lat;
                for line in &r.missed_lines {
                    completion =
                        completion.max(self.offchip_fill(*line, L2Source::Constant, now, false));
                }
                (r.replays, completion)
            }
            MemorySpace::Texture1D | MemorySpace::Texture2D => {
                let r = self.sms[sm_id].tex_cache.access_warp(&lane_addrs);
                self.events.tex_requests += 1;
                self.events.tex_transactions += u64::from(r.transactions);
                self.events.tex_cache_misses += u64::from(r.misses);
                let mut completion = now + self.cfg.tex_hit_lat;
                for line in &r.missed_lines {
                    completion = completion.max(
                        self.offchip_fill(*line, L2Source::Texture, now, false)
                            + self.cfg.tex_hit_lat
                            - self.cfg.l2_hit_lat.min(self.cfg.tex_hit_lat),
                    );
                }
                // Texture fetches do not replay (the texture unit handles
                // divergence internally) — consistent with the paper's
                // replay causes (1)-(4), which exclude texture.
                (0, completion)
            }
            MemorySpace::Global => {
                let co = coalesce(
                    lane_addrs.iter().copied(),
                    u64::from(m.elem_bytes),
                    self.cfg.transaction_bytes,
                );
                if m.is_store {
                    self.events.global_st_requests += 1;
                } else {
                    self.events.global_ld_requests += 1;
                }
                self.events.global_transactions += co.transactions.len() as u64;
                self.events.replay_global_divergence += u64::from(co.replays);
                let mut completion = now;
                for t in &co.transactions {
                    completion =
                        completion.max(self.offchip_fill(*t, L2Source::Global, now, m.is_store));
                }
                (co.replays, completion)
            }
        }
    }

    /// Execute one local-memory access: per-lane slots resolve to the
    /// interleaved local address space, coalesce, and go through the
    /// per-SM L1 (then L2/DRAM on a miss). Replays: address divergence
    /// (cause (9)) and L1 misses (cause (7)).
    fn perform_local(
        &mut self,
        sm_id: usize,
        block: u32,
        warp: u32,
        is_store: bool,
        slots: &[u32],
        now: u64,
    ) -> (u32, u64) {
        use hms_trace::concrete::local_addr;
        let g = &self.trace.geometry;
        let total_threads = g.total_threads();
        let addrs: Vec<u64> = slots
            .iter()
            .enumerate()
            .filter_map(|(lane, &slot)| {
                g.thread_id(block, warp, lane as u32)
                    .map(|tid| local_addr(slot, tid, total_threads))
            })
            .collect();
        if is_store {
            self.events.local_st_requests += 1;
        } else {
            self.events.local_ld_requests += 1;
        }
        if addrs.is_empty() {
            return (0, now);
        }
        let co = coalesce(addrs.iter().copied(), 4, self.cfg.transaction_bytes);
        let divergence = co.replays;
        self.events.replay_local_divergence += u64::from(divergence);
        let mut misses = 0u32;
        let mut completion = now + self.cfg.l1_hit_lat;
        for t in &co.transactions {
            if !self.sms[sm_id].l1.access_rw(*t, is_store).is_hit() {
                misses += 1;
                completion = completion.max(self.offchip_fill(*t, L2Source::Global, now, is_store));
            }
        }
        self.events.l1_local_hits += co.transactions.len() as u64 - u64::from(misses);
        self.events.l1_local_misses += u64::from(misses);
        self.events.replay_local_l1_miss += u64::from(misses);
        (divergence + misses, completion)
    }

    /// Send one transaction through L2 (and DRAM on a miss); returns the
    /// completion cycle. Writes dirty the L2 line; the resulting
    /// write-back traffic is counted (`l2_writebacks`) but not timed —
    /// write drains happen off the kernel's critical path.
    fn offchip_fill(&mut self, addr: u64, source: L2Source, now: u64, write: bool) -> u64 {
        let out = self.l2.access_rw(addr, source, write);
        if out.is_hit() {
            now + self.cfg.l2_hit_lat
        } else {
            let r = self.dram.access(now, addr);
            r.complete_at + self.cfg.l2_hit_lat
        }
    }

    fn finish_warp(&mut self, sm_id: usize, wi: usize, now: u64) {
        let slot = self.sms[sm_id].warps[wi].block_slot;
        {
            let w = &mut self.sms[sm_id].warps[wi];
            if w.done {
                return;
            }
            w.done = true;
        }
        let sm = &mut self.sms[sm_id];
        sm.live -= 1;
        sm.blocks[slot].alive -= 1;
        // A finished warp can be the last arrival a barrier was waiting
        // for.
        if sm.blocks[slot].alive > 0 && sm.blocks[slot].arrived >= sm.blocks[slot].alive {
            sm.blocks[slot].arrived = 0;
            for w in &mut sm.warps {
                if w.block_slot == slot && w.at_barrier {
                    w.at_barrier = false;
                }
            }
        }
        if sm.blocks[slot].alive == 0 {
            // Block retired: pull the next one onto this SM.
            self.assign_block(sm_id, now + 1);
        }
    }
}

enum IssueOutcome {
    Issued { double_width: bool },
    Nothing,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hms_trace::{materialize, ElemIdx, KernelTrace, MemRef, SymOp, WarpTrace};
    use hms_types::{ArrayDef, ArrayId, DType, Geometry, PlacementMap};

    fn cfg() -> GpuConfig {
        GpuConfig::test_small()
    }

    fn vecadd(blocks: u32) -> KernelTrace {
        let n = u64::from(blocks) * 32;
        KernelTrace {
            name: "vecadd".into(),
            arrays: vec![
                ArrayDef::new_1d(0, "a", DType::F32, n, false),
                ArrayDef::new_1d(1, "b", DType::F32, n, false),
                ArrayDef::new_1d(2, "v", DType::F32, n, true),
            ],
            geometry: Geometry::new(blocks, 32),
            warps: (0..blocks)
                .map(|b| WarpTrace {
                    block: b,
                    warp: 0,
                    ops: vec![
                        SymOp::IntAlu(2), // thread-id computation
                        SymOp::AddrCalc {
                            array: ArrayId(0),
                            count: 1,
                        },
                        SymOp::Access(MemRef::load_lin(
                            ArrayId(0),
                            (0..32).map(|l| u64::from(b) * 32 + l),
                        )),
                        SymOp::AddrCalc {
                            array: ArrayId(1),
                            count: 1,
                        },
                        SymOp::Access(MemRef::load_lin(
                            ArrayId(1),
                            (0..32).map(|l| u64::from(b) * 32 + l),
                        )),
                        SymOp::WaitLoads,
                        SymOp::FpAlu(1),
                        SymOp::AddrCalc {
                            array: ArrayId(2),
                            count: 1,
                        },
                        SymOp::Access(MemRef::store_lin(
                            ArrayId(2),
                            (0..32).map(|l| u64::from(b) * 32 + l),
                        )),
                    ],
                })
                .collect(),
        }
    }

    fn run(kt: &KernelTrace, pm: &PlacementMap) -> SimResult {
        let cfg = cfg();
        let ct = materialize(kt, pm, &cfg).unwrap();
        simulate_default(&ct, &cfg).unwrap()
    }

    #[test]
    fn vecadd_completes_and_counts_instructions() {
        let kt = vecadd(8);
        let r = run(&kt, &kt.default_placement());
        assert!(r.cycles > 0);
        // Per warp: 2 int + 2 addr-calc ops x2 instrs + 2 loads + 1 fp +
        // 1 addr-calc x2 + 1 store = executed 2+2+2+1+2+1+1+1 = well,
        // count precisely: IntAlu(2)=2, AddrCalc->2, load=1, AddrCalc->2,
        // load=1, fp=1, AddrCalc->2, store=1 => 12 per warp, 8 warps.
        assert_eq!(r.events.inst_executed, 12 * 8);
        assert_eq!(r.events.global_ld_requests, 16);
        assert_eq!(r.events.global_st_requests, 8);
        // Coalesced: one 128-byte transaction per access.
        assert_eq!(r.events.global_transactions, 24);
        assert_eq!(r.events.replay_global_divergence, 0);
        assert_eq!(r.events.inst_issued, r.events.inst_executed);
        assert_eq!(r.events.dram_requests, r.events.l2_misses);
        assert!(r.time_ns > 0.0);
    }

    #[test]
    fn texture_placement_drops_addressing_instructions() {
        let kt = vecadd(8);
        let g = run(&kt, &kt.default_placement());
        let t = run(
            &kt,
            &kt.default_placement()
                .with(ArrayId(0), MemorySpace::Texture1D)
                .with(ArrayId(1), MemorySpace::Texture1D),
        );
        // Each input access loses its 2 addressing instructions.
        assert_eq!(g.events.inst_executed - t.events.inst_executed, 4 * 8);
        assert_eq!(g.events.inst_integer - t.events.inst_integer, 4 * 8);
        assert!(t.events.tex_requests > 0);
        assert_eq!(t.events.global_ld_requests, 0);
    }

    #[test]
    fn divergent_global_access_replays() {
        let mut kt = vecadd(4);
        // Make array `a` accesses strided so each lane owns a transaction.
        for (b, w) in kt.warps.iter_mut().enumerate() {
            w.ops[2] = SymOp::Access(MemRef::load_lin(
                ArrayId(0),
                (0..32).map(move |l| (b as u64 * 32 + l) * 37 % 128),
            ));
        }
        kt.arrays[0] = ArrayDef::new_1d(0, "a", DType::F32, 128 * 37, false);
        let r = run(&kt, &kt.default_placement());
        assert!(r.events.replay_global_divergence > 0);
        assert!(r.events.inst_issued > r.events.inst_executed);
    }

    #[test]
    fn constant_placement_of_uniform_data_is_cheap() {
        // All lanes of all warps read the same kernel coefficient table
        // element-by-element uniformly: constant memory's broadcast hits.
        let kt = KernelTrace {
            name: "uniform".into(),
            arrays: vec![ArrayDef::new_1d(0, "coef", DType::F32, 64, false)],
            geometry: Geometry::new(4, 32),
            warps: (0..4)
                .map(|b| WarpTrace {
                    block: b,
                    warp: 0,
                    ops: (0..16)
                        .flat_map(|i| {
                            vec![
                                SymOp::AddrCalc {
                                    array: ArrayId(0),
                                    count: 1,
                                },
                                SymOp::Access(MemRef::load(
                                    ArrayId(0),
                                    vec![Some(ElemIdx::Lin(i)); 32],
                                )),
                                SymOp::WaitLoads,
                                SymOp::FpAlu(1),
                            ]
                        })
                        .collect(),
                })
                .collect(),
        };
        let g = run(&kt, &kt.default_placement());
        let c = run(
            &kt,
            &kt.default_placement()
                .with(ArrayId(0), MemorySpace::Constant),
        );
        assert!(c.events.const_requests > 0);
        assert_eq!(c.events.replay_const_divergence, 0);
        // Uniform broadcast reads should finish no slower from constant
        // memory than from global.
        assert!(c.cycles <= g.cycles);
    }

    #[test]
    fn shared_placement_pays_staging_but_serves_fast() {
        // Repeatedly re-read a small table; shared placement stages it
        // once per block then serves at SRAM latency.
        let kt = KernelTrace {
            name: "reread".into(),
            arrays: vec![ArrayDef::new_1d(0, "table", DType::F32, 1024, false)],
            geometry: Geometry::new(2, 64),
            warps: (0..4)
                .map(|i| WarpTrace {
                    block: i / 2,
                    warp: i % 2,
                    ops: (0..32)
                        .flat_map(|r| {
                            let base = (r * 64 + (i % 2) as u64 * 32) % 992;
                            vec![
                                SymOp::AddrCalc {
                                    array: ArrayId(0),
                                    count: 1,
                                },
                                SymOp::Access(MemRef::load_lin(ArrayId(0), base..base + 32)),
                                SymOp::WaitLoads,
                                SymOp::FpAlu(2),
                            ]
                        })
                        .collect(),
                })
                .collect(),
        };
        let s = run(
            &kt,
            &kt.default_placement().with(ArrayId(0), MemorySpace::Shared),
        );
        assert!(s.events.shared_ld_requests > 0);
        // Staging happened: global loads + shared stores + a barrier.
        assert!(s.events.global_ld_requests > 0);
        assert!(s.events.shared_st_requests > 0);
        assert!(s.events.sync_count > 0);
    }

    #[test]
    fn sync_threads_barrier_is_not_a_deadlock() {
        let kt = KernelTrace {
            name: "sync".into(),
            arrays: vec![ArrayDef::new_1d(0, "x", DType::F32, 128, true)],
            geometry: Geometry::new(1, 128),
            warps: (0..4)
                .map(|w| WarpTrace {
                    block: 0,
                    warp: w,
                    ops: vec![
                        SymOp::IntAlu((w + 1) as u16 * 4), // skewed arrival
                        SymOp::SyncThreads,
                        SymOp::FpAlu(1),
                        SymOp::SyncThreads,
                        SymOp::IntAlu(1),
                    ],
                })
                .collect(),
        };
        let r = run(&kt, &kt.default_placement());
        assert_eq!(r.events.sync_count, 8);
    }

    #[test]
    fn more_blocks_take_longer() {
        let small = vecadd(4);
        let large = vecadd(64);
        let rs = run(&small, &small.default_placement());
        let rl = run(&large, &large.default_placement());
        assert!(rl.cycles > rs.cycles);
        assert_eq!(rl.events.blocks_launched, 64);
    }

    #[test]
    fn fp64_consumes_two_issue_slots() {
        let kt = KernelTrace {
            name: "dp".into(),
            arrays: vec![ArrayDef::new_1d(0, "x", DType::F64, 32, false)],
            geometry: Geometry::new(1, 32),
            warps: vec![WarpTrace {
                block: 0,
                warp: 0,
                ops: vec![SymOp::Fp64(10)],
            }],
        };
        let r = run(&kt, &kt.default_placement());
        assert_eq!(r.events.inst_fp64, 10);
        assert_eq!(r.events.replay_double_width, 10);
        assert_eq!(r.events.issue_slots, r.events.inst_issued + 10);
    }

    #[test]
    fn row_buffer_events_reach_event_set() {
        let kt = vecadd(32);
        let r = run(&kt, &kt.default_placement());
        assert!(r.events.dram_requests > 0);
        assert_eq!(
            r.events.dram_requests,
            r.events.row_buffer_hits + r.events.row_buffer_misses + r.events.row_buffer_conflicts
        );
    }
}
