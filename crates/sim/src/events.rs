//! The simulator's `nvprof`-like performance-event set.
//!
//! The paper collects 265 hardware events per placement and mines them
//! with cosine similarity (Section II-B); our simulator exposes the ~40
//! events its machinery actually produces, including every event the
//! paper's Table I and `T_overlap` feature vector (Eq. 11) need:
//! `issue_slots`, `inst_issued`, `inst_integer`, `ldst_issue`,
//! `L2_transactions`, per-space requests and cache misses, shared-memory
//! bank conflicts, and row-buffer hit/miss/conflict counts.

/// Counter values accumulated over one simulated kernel launch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventSet {
    // ---- time ----
    /// Total elapsed cycles (the simulator's "measured" execution time).
    pub elapsed_cycles: u64,

    // ---- instruction issue ----
    /// Instructions issued, *including* replays (the paper's preferred
    /// computation-cost indicator).
    pub inst_issued: u64,
    /// Issue slots consumed: like `inst_issued` but double-width
    /// instructions occupy two slots.
    pub issue_slots: u64,
    /// Instructions executed (each instruction once, replays excluded).
    pub inst_executed: u64,
    /// Integer instructions executed (ALU + addressing arithmetic).
    pub inst_integer: u64,
    /// Single-precision FP instructions executed.
    pub inst_fp32: u64,
    /// Double-precision FP instructions executed.
    pub inst_fp64: u64,
    /// SFU instructions executed.
    pub inst_sfu: u64,
    /// Load/store instructions issued, including replays (`ldst_issue`).
    pub ldst_issued: u64,
    /// Load/store instructions executed.
    pub ldst_executed: u64,
    /// Barrier instructions executed.
    pub sync_count: u64,

    // ---- instruction replays by cause (paper Section III-B) ----
    /// (1) global-memory address divergence.
    pub replay_global_divergence: u64,
    /// (2) constant-cache misses.
    pub replay_const_miss: u64,
    /// (3) address divergence in indexed constant loads.
    pub replay_const_divergence: u64,
    /// (4) shared-memory bank conflicts.
    pub replay_shared_conflict: u64,
    /// (5) double-width instructions issuing over two cycles.
    pub replay_double_width: u64,
    /// (7) L1 misses on local-memory accesses (register spills / stack).
    pub replay_local_l1_miss: u64,
    /// (9) address divergence in local-memory accesses.
    pub replay_local_divergence: u64,

    // ---- per-space warp-level requests ----
    pub global_ld_requests: u64,
    pub global_st_requests: u64,
    pub global_transactions: u64,
    pub tex_requests: u64,
    pub tex_transactions: u64,
    pub tex_cache_misses: u64,
    pub const_requests: u64,
    pub const_transactions: u64,
    pub const_cache_misses: u64,
    pub shared_ld_requests: u64,
    pub shared_st_requests: u64,
    pub local_ld_requests: u64,
    pub local_st_requests: u64,
    pub l1_local_hits: u64,
    pub l1_local_misses: u64,

    // ---- L2 ----
    pub l2_transactions: u64,
    pub l2_misses: u64,
    pub l2_from_global: u64,
    pub l2_from_tex: u64,
    pub l2_from_const: u64,
    /// Dirty L2 lines written back to DRAM (write-back policy traffic;
    /// counted, not timed — see the machine docs).
    pub l2_writebacks: u64,

    // ---- DRAM ----
    pub dram_requests: u64,
    pub row_buffer_hits: u64,
    pub row_buffer_misses: u64,
    pub row_buffer_conflicts: u64,
    /// Sum of DRAM request latencies (cycles).
    pub dram_total_latency: u64,
    /// Sum of DRAM queuing delays (cycles).
    pub dram_total_queuing: u64,

    // ---- occupancy / stalls ----
    pub blocks_launched: u64,
    pub warps_launched: u64,
    /// Cycle-slots where an SM had resident warps but could issue
    /// nothing (all warps blocked on memory or barriers).
    pub stall_cycles: u64,
}

impl EventSet {
    /// Total instruction replays across causes. Saturating: wrapped
    /// counter values are a validity-domain violation that
    /// `Profile::validate` reports via [`EventSet::checked_total_replays`];
    /// the accessor itself must stay panic-free under `overflow-checks`.
    pub fn total_replays(&self) -> u64 {
        self.replay_double_width
            .saturating_add(self.replay_local_l1_miss)
            .saturating_add(self.replay_local_divergence)
            .saturating_add(self.replays_1_to_4())
    }

    /// Overflow-aware [`EventSet::total_replays`]: `None` when the sum
    /// of replay causes wraps u64, i.e. the event set is corrupt.
    pub fn checked_total_replays(&self) -> Option<u64> {
        let mut total = self.replay_global_divergence;
        for v in [
            self.replay_const_miss,
            self.replay_const_divergence,
            self.replay_shared_conflict,
            self.replay_double_width,
            self.replay_local_l1_miss,
            self.replay_local_divergence,
        ] {
            total = total.checked_add(v)?;
        }
        Some(total)
    }

    /// Replays attributable to causes (1)–(4) — the placement-dependent
    /// replays of the paper's Eq. 3. Saturating, like
    /// [`EventSet::total_replays`].
    pub fn replays_1_to_4(&self) -> u64 {
        self.replay_global_divergence
            .saturating_add(self.replay_const_miss)
            .saturating_add(self.replay_const_divergence)
            .saturating_add(self.replay_shared_conflict)
    }

    /// All counters as named values, for the Table I cosine-similarity
    /// mining. Names follow `nvprof` conventions where one exists.
    pub fn named(&self) -> Vec<(&'static str, f64)> {
        let f = |x: u64| x as f64;
        vec![
            ("inst_issued", f(self.inst_issued)),
            ("issue_slots", f(self.issue_slots)),
            ("inst_executed", f(self.inst_executed)),
            ("inst_integer", f(self.inst_integer)),
            ("inst_fp32", f(self.inst_fp32)),
            ("inst_fp64", f(self.inst_fp64)),
            ("inst_sfu", f(self.inst_sfu)),
            ("ldst_issue", f(self.ldst_issued)),
            ("ldst_executed", f(self.ldst_executed)),
            ("sync_count", f(self.sync_count)),
            ("replay_global_divergence", f(self.replay_global_divergence)),
            ("replay_const_miss", f(self.replay_const_miss)),
            ("replay_const_divergence", f(self.replay_const_divergence)),
            ("replay_shared_conflict", f(self.replay_shared_conflict)),
            ("replay_double_width", f(self.replay_double_width)),
            ("replay_local_l1_miss", f(self.replay_local_l1_miss)),
            ("replay_local_divergence", f(self.replay_local_divergence)),
            ("total_replays", f(self.total_replays())),
            ("global_ld_requests", f(self.global_ld_requests)),
            ("global_st_requests", f(self.global_st_requests)),
            ("global_transactions", f(self.global_transactions)),
            ("tex_requests", f(self.tex_requests)),
            ("tex_transactions", f(self.tex_transactions)),
            ("tex_cache_misses", f(self.tex_cache_misses)),
            ("const_requests", f(self.const_requests)),
            ("const_transactions", f(self.const_transactions)),
            ("const_cache_misses", f(self.const_cache_misses)),
            ("shared_ld_requests", f(self.shared_ld_requests)),
            ("shared_st_requests", f(self.shared_st_requests)),
            ("local_ld_requests", f(self.local_ld_requests)),
            ("local_st_requests", f(self.local_st_requests)),
            ("l1_local_hits", f(self.l1_local_hits)),
            ("l1_local_misses", f(self.l1_local_misses)),
            ("L2_transactions", f(self.l2_transactions)),
            ("L2_misses", f(self.l2_misses)),
            ("L2_from_global", f(self.l2_from_global)),
            ("L2_from_tex", f(self.l2_from_tex)),
            ("L2_from_const", f(self.l2_from_const)),
            ("L2_writebacks", f(self.l2_writebacks)),
            ("dram_requests", f(self.dram_requests)),
            ("row_buffer_hits", f(self.row_buffer_hits)),
            ("row_buffer_misses", f(self.row_buffer_misses)),
            ("row_buffer_conflicts", f(self.row_buffer_conflicts)),
            ("dram_total_latency", f(self.dram_total_latency)),
            ("dram_total_queuing", f(self.dram_total_queuing)),
            ("blocks_launched", f(self.blocks_launched)),
            ("warps_launched", f(self.warps_launched)),
            ("stall_cycles", f(self.stall_cycles)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_totals_compose() {
        let e = EventSet {
            replay_global_divergence: 3,
            replay_const_miss: 1,
            replay_const_divergence: 2,
            replay_shared_conflict: 4,
            replay_double_width: 5,
            ..Default::default()
        };
        assert_eq!(e.total_replays(), 15);
        assert_eq!(e.replays_1_to_4(), 10);
    }

    #[test]
    fn named_exports_every_table1_event() {
        let e = EventSet::default();
        let names: Vec<&str> = e.named().iter().map(|(n, _)| *n).collect();
        for required in [
            "issue_slots",
            "inst_issued",
            "inst_integer",
            "ldst_issue",
            "L2_transactions",
        ] {
            assert!(names.contains(&required), "missing {required}");
        }
        // No duplicate names.
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }
}
