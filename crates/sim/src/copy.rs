//! Initialization and write-back copies for shared-memory placements.
//!
//! "There is also an initialization phase for certain memory components
//! before the data is ready to access ... For the shared memory, the
//! initialization phase copies data between global memory and shared
//! memory." (paper Section III-B.)
//!
//! When a non-scratch array is placed in shared memory, every block must
//! stage it from its off-chip backing store before use — and write it
//! back afterwards if the kernel modified it. The simulator synthesizes
//! these copies as real instructions (global loads + shared stores), so
//! the cost shows up in the measured time, the event counters, and the
//! DRAM request stream, exactly as it would on hardware.

use hms_trace::{CInstr, CMemRef, ConcreteTrace};
use hms_types::{ArrayId, GpuConfig, MemorySpace};

/// Build the per-warp copy instruction stream for one direction.
///
/// The block's warps split the array into `warp_size`-element chunks,
/// taken round-robin (`chunk % warps_per_block == warp`). Each chunk is
/// one wide load, a wait, and one wide store.
fn copy_chunks(
    trace: &ConcreteTrace,
    array: ArrayId,
    block: u32,
    warp: u32,
    to_shared: bool,
    cfg: &GpuConfig,
) -> Vec<CInstr> {
    let def = &trace.arrays[array.index()];
    let esize = def.dtype.size_bytes();
    let elements = def.dims.elements();
    let lanes = u64::from(cfg.warp_size);
    let warps_per_block = u64::from(trace.geometry.warps_per_block());
    let chunks = elements.div_ceil(lanes);
    let global_base = trace.alloc.offchip_base(array);
    let shared_base = trace.alloc.base(array, block, &trace.placement);
    debug_assert_eq!(trace.placement.space(array), MemorySpace::Shared);

    let mut ops = Vec::new();
    let mut chunk = u64::from(warp);
    while chunk < chunks {
        let first = chunk * lanes;
        let addrs_for = |base: u64| -> Vec<Option<u64>> {
            (0..lanes)
                .map(|l| {
                    let e = first + l;
                    (e < elements).then(|| base + e * esize)
                })
                .collect()
        };
        let (src_base, src_space, dst_base, dst_space) = if to_shared {
            (
                global_base,
                MemorySpace::Global,
                shared_base,
                MemorySpace::Shared,
            )
        } else {
            (
                shared_base,
                MemorySpace::Shared,
                global_base,
                MemorySpace::Global,
            )
        };
        ops.push(CInstr::Mem(CMemRef {
            array,
            space: src_space,
            is_store: false,
            elem_bytes: esize as u8,
            addrs: addrs_for(src_base),
        }));
        ops.push(CInstr::WaitLoads);
        ops.push(CInstr::Mem(CMemRef {
            array,
            space: dst_space,
            is_store: true,
            elem_bytes: esize as u8,
            addrs: addrs_for(dst_base),
        }));
        chunk += warps_per_block;
    }
    ops
}

/// Prologue for one warp: stage every shared-placed, non-scratch array
/// from global memory, then barrier so no warp reads a half-filled tile.
pub fn shared_init_prologue(
    trace: &ConcreteTrace,
    block: u32,
    warp: u32,
    cfg: &GpuConfig,
) -> Vec<CInstr> {
    let mut ops = Vec::new();
    for (id, space) in trace.placement.iter() {
        let def = &trace.arrays[id.index()];
        if space == MemorySpace::Shared && !def.scratch {
            ops.extend(copy_chunks(trace, id, block, warp, true, cfg));
        }
    }
    if !ops.is_empty() {
        ops.push(CInstr::SyncThreads);
    }
    ops
}

/// Epilogue for one warp: barrier, then write back every shared-placed
/// array the kernel wrote (unless it is scratch).
pub fn shared_writeback_epilogue(
    trace: &ConcreteTrace,
    block: u32,
    warp: u32,
    cfg: &GpuConfig,
) -> Vec<CInstr> {
    let mut ops = Vec::new();
    for (id, space) in trace.placement.iter() {
        let def = &trace.arrays[id.index()];
        if space == MemorySpace::Shared && def.written && !def.scratch {
            ops.extend(copy_chunks(trace, id, block, warp, false, cfg));
        }
    }
    if !ops.is_empty() {
        ops.insert(0, CInstr::SyncThreads);
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use hms_trace::{materialize, KernelTrace, MemRef, SymOp, WarpTrace};
    use hms_types::{ArrayDef, DType, Geometry, PlacementMap};

    fn trace_with(placement: fn(&KernelTrace) -> PlacementMap) -> ConcreteTrace {
        let kt = KernelTrace {
            name: "k".into(),
            arrays: vec![
                ArrayDef::new_1d(0, "data", DType::F32, 96, false),
                ArrayDef::new_1d(1, "tmp", DType::F32, 64, true).scratch(),
            ],
            geometry: Geometry::new(2, 64),
            warps: (0..4)
                .map(|i| WarpTrace {
                    block: i / 2,
                    warp: i % 2,
                    ops: vec![SymOp::Access(MemRef::load_lin(ArrayId(0), 0..32))],
                })
                .collect(),
        };
        let pm = placement(&kt);
        materialize(&kt, &pm, &GpuConfig::tesla_k80()).unwrap()
    }

    #[test]
    fn no_copy_for_offchip_placements() {
        let t = trace_with(|k| k.default_placement());
        let cfg = GpuConfig::tesla_k80();
        assert!(shared_init_prologue(&t, 0, 0, &cfg).is_empty());
        assert!(shared_writeback_epilogue(&t, 0, 0, &cfg).is_empty());
    }

    #[test]
    fn scratch_arrays_are_not_staged() {
        let t = trace_with(|k| k.default_placement().with(ArrayId(1), MemorySpace::Shared));
        let cfg = GpuConfig::tesla_k80();
        assert!(shared_init_prologue(&t, 0, 0, &cfg).is_empty());
        assert!(shared_writeback_epilogue(&t, 0, 0, &cfg).is_empty());
    }

    #[test]
    fn data_array_staged_and_chunks_split_across_warps() {
        let t = trace_with(|k| k.default_placement().with(ArrayId(0), MemorySpace::Shared));
        let cfg = GpuConfig::tesla_k80();
        // 96 elements / 32 lanes = 3 chunks over 2 warps: warp 0 takes
        // chunks {0, 2}, warp 1 takes chunk {1}.
        let w0 = shared_init_prologue(&t, 0, 0, &cfg);
        let w1 = shared_init_prologue(&t, 0, 1, &cfg);
        let mems = |ops: &[CInstr]| ops.iter().filter(|o| matches!(o, CInstr::Mem(_))).count();
        assert_eq!(mems(&w0), 4); // 2 chunks x (load + store)
        assert_eq!(mems(&w1), 2);
        assert!(matches!(w0.last(), Some(CInstr::SyncThreads)));
        // Loads come from global, stores go to shared.
        let CInstr::Mem(ld) = &w0[0] else { panic!() };
        let CInstr::Mem(st) = &w0[2] else { panic!() };
        assert_eq!(ld.space, MemorySpace::Global);
        assert!(!ld.is_store);
        assert_eq!(st.space, MemorySpace::Shared);
        assert!(st.is_store);
        // Unwritten array: no write-back.
        assert!(shared_writeback_epilogue(&t, 0, 0, &cfg).is_empty());
    }

    #[test]
    fn ragged_tail_masks_lanes() {
        let t = trace_with(|k| k.default_placement().with(ArrayId(0), MemorySpace::Shared));
        let cfg = GpuConfig::tesla_k80();
        // 96 elements with 32 lanes: all chunks full here; shrink check
        // via chunk 2 (covers 64..96 -> full) — use warp 0's second load.
        let w0 = shared_init_prologue(&t, 0, 0, &cfg);
        let CInstr::Mem(ld2) = &w0[3] else { panic!() };
        assert_eq!(ld2.addrs.iter().filter(|a| a.is_some()).count(), 32);
    }
}
