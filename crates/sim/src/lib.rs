//! # hms-sim
//!
//! A trace-driven, cycle-level GPU execution simulator that stands in for
//! the paper's evaluation platform (an NVIDIA Tesla K80 profiled with
//! `nvprof` and SASSI). It consumes the concrete traces of `hms-trace`,
//! executes them on a machine with SMs, a warp scheduler with instruction
//! replays, per-SM constant/texture caches, a shared L2 and a GDDR5 DRAM
//! model with row buffers and per-bank queues (`hms-dram`), and reports:
//!
//! * the **measured execution time** (cycles / nanoseconds) that the
//!   paper's models are validated against, and
//! * an `nvprof`-like **event set** ([`EventSet`]) covering every counter
//!   the paper's methodology consumes (Table I events, the replay causes
//!   of Section III-B, and the `T_overlap` features of Eq. 11).
//!
//! See `DESIGN.md` for why a simulator is the faithful substitution for
//! the paper's hardware: the models only ever observe event counts,
//! traces, and times.

pub mod copy;
pub mod events;
pub mod machine;

pub use events::EventSet;
pub use machine::{simulate, simulate_default, SimOptions, SimResult};
