//! One GDDR5 bank: a row buffer plus a busy-until timestamp.
//!
//! "For any memory request, a row of data is first read into a row buffer
//! associated with each bank. If the request is to a currently open row
//! (a row buffer hit), then the data is directly serviced from the row
//! buffer. If the request is not to a currently open row, the memory
//! controller has to write back data in the open row and fetch a new row,
//! which causes longer access latency." (paper Section II-A.)

use hms_types::DramTimingConfig;

/// Outcome class of one bank access, ordered by service time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Requested row is open in the row buffer — shortest latency.
    Hit,
    /// No row open (first touch of the bank) — the paper's "row buffer
    /// miss" without a conflict.
    Miss,
    /// A *different* row is open: write-back + activate — the paper's "row
    /// conflict", the longest latency of all memory requests.
    Conflict,
}

impl AccessKind {
    /// Service time of this outcome under `t`.
    #[inline]
    pub fn service_cycles(self, t: &DramTimingConfig) -> u64 {
        match self {
            AccessKind::Hit => t.hit_cycles,
            AccessKind::Miss => t.miss_cycles,
            AccessKind::Conflict => t.conflict_cycles,
        }
    }
}

/// Mutable state of one bank.
#[derive(Debug, Clone, Default)]
pub struct BankState {
    /// Currently open row, if any.
    pub open_row: Option<u64>,
    /// Cycle at which the bank finishes its last queued request.
    pub free_at: u64,
}

impl BankState {
    /// Classify an access to `row` against the current row-buffer state
    /// *without* mutating it.
    #[inline]
    pub fn classify(&self, row: u64) -> AccessKind {
        match self.open_row {
            Some(open) if open == row => AccessKind::Hit,
            Some(_) => AccessKind::Conflict,
            None => AccessKind::Miss,
        }
    }

    /// Service a request to `row` arriving at `arrival`: the request waits
    /// until the bank is free (FIFO per-bank queue), then occupies the
    /// bank for the row-buffer-dependent service time. Returns
    /// `(completion_cycle, kind, queuing_delay)`.
    pub fn service(
        &mut self,
        arrival: u64,
        row: u64,
        t: &DramTimingConfig,
    ) -> (u64, AccessKind, u64) {
        let kind = self.classify(row);
        let start = arrival.max(self.free_at);
        let queuing = start - arrival;
        let done = start + kind.service_cycles(t);
        self.free_at = done;
        self.open_row = Some(row);
        (done, kind, queuing)
    }

    /// Close the open row (models a refresh or explicit precharge between
    /// probe rounds in Algorithm 1).
    pub fn precharge(&mut self) {
        self.open_row = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hms_types::GpuConfig;

    fn timing() -> DramTimingConfig {
        GpuConfig::tesla_k80().dram
    }

    #[test]
    fn first_touch_is_miss_then_hit() {
        let t = timing();
        let mut b = BankState::default();
        let (done, kind, q) = b.service(0, 7, &t);
        assert_eq!(kind, AccessKind::Miss);
        assert_eq!(done, t.miss_cycles);
        assert_eq!(q, 0);
        // Same row again: hit, queued behind the first.
        let (done2, kind2, q2) = b.service(0, 7, &t);
        assert_eq!(kind2, AccessKind::Hit);
        assert_eq!(q2, t.miss_cycles);
        assert_eq!(done2, t.miss_cycles + t.hit_cycles);
    }

    #[test]
    fn different_row_is_conflict() {
        let t = timing();
        let mut b = BankState::default();
        b.service(0, 1, &t);
        let (_, kind, _) = b.service(10_000, 2, &t);
        assert_eq!(kind, AccessKind::Conflict);
        assert_eq!(b.open_row, Some(2));
    }

    #[test]
    fn idle_bank_has_no_queuing_delay() {
        let t = timing();
        let mut b = BankState::default();
        b.service(0, 1, &t);
        // Arrive long after the bank drained.
        let (_, _, q) = b.service(1_000_000, 1, &t);
        assert_eq!(q, 0);
    }

    #[test]
    fn precharge_turns_hit_into_miss() {
        let t = timing();
        let mut b = BankState::default();
        b.service(0, 3, &t);
        b.precharge();
        assert_eq!(b.classify(3), AccessKind::Miss);
    }

    #[test]
    fn latency_ordering_matches_paper() {
        // hit < miss < conflict, the invariant Algorithm 1 relies on.
        let t = timing();
        assert!(AccessKind::Hit.service_cycles(&t) < AccessKind::Miss.service_cycles(&t));
        assert!(AccessKind::Miss.service_cycles(&t) < AccessKind::Conflict.service_cycles(&t));
    }
}
