//! Accumulated DRAM statistics: per-bank request mix and arrival streams.
//!
//! These counters feed three places: the simulator's `nvprof`-like event
//! set (row-buffer hit/miss/conflict events appear in the `T_overlap`
//! feature vector, Eq. 11), the `T_mem` queuing model's per-bank
//! inter-arrival and service statistics (Eq. 9–10), and Figure 4's
//! distribution analysis.

use crate::bank::AccessKind;

/// Per-bank counters.
#[derive(Debug, Clone, Default)]
pub struct BankStats {
    pub requests: u64,
    pub hits: u64,
    pub misses: u64,
    pub conflicts: u64,
    pub total_queuing: u64,
    pub total_latency: u64,
    /// Cycles spent waiting for the channel data bus after bank service.
    pub total_bus_wait: u64,
}

/// Device-wide DRAM statistics.
#[derive(Debug, Clone)]
pub struct DramStats {
    pub banks: Vec<BankStats>,
    /// Arrival cycles per bank, recorded only when `record_arrivals` was
    /// requested (used for Figure 4 and the queuing-model validation).
    pub arrivals: Vec<Vec<u64>>,
    record_arrivals: bool,
}

impl DramStats {
    pub fn new(num_banks: u32, record_arrivals: bool) -> Self {
        DramStats {
            banks: vec![BankStats::default(); num_banks as usize],
            arrivals: vec![
                Vec::new();
                if record_arrivals {
                    num_banks as usize
                } else {
                    0
                }
            ],
            record_arrivals,
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record(
        &mut self,
        bank: u32,
        arrival: u64,
        kind: AccessKind,
        queuing: u64,
        latency: u64,
        bus_wait: u64,
    ) {
        let b = &mut self.banks[bank as usize];
        b.requests += 1;
        match kind {
            AccessKind::Hit => b.hits += 1,
            AccessKind::Miss => b.misses += 1,
            AccessKind::Conflict => b.conflicts += 1,
        }
        b.total_queuing += queuing;
        b.total_latency += latency;
        b.total_bus_wait += bus_wait;
        if self.record_arrivals {
            self.arrivals[bank as usize].push(arrival);
        }
    }

    /// Total requests across banks.
    pub fn total_requests(&self) -> u64 {
        self.banks.iter().map(|b| b.requests).sum()
    }

    /// Device-wide row-buffer event totals `(hits, misses, conflicts)`.
    pub fn row_buffer_totals(&self) -> (u64, u64, u64) {
        let mut t = (0, 0, 0);
        for b in &self.banks {
            t.0 += b.hits;
            t.1 += b.misses;
            t.2 += b.conflicts;
        }
        t
    }

    /// Mean access latency (queuing + service) over all requests, or 0.
    pub fn mean_latency(&self) -> f64 {
        let reqs = self.total_requests();
        if reqs == 0 {
            return 0.0;
        }
        self.banks.iter().map(|b| b.total_latency).sum::<u64>() as f64 / reqs as f64
    }

    /// Mean channel-bus wait over all requests, or 0.
    pub fn mean_bus_wait(&self) -> f64 {
        let reqs = self.total_requests();
        if reqs == 0 {
            return 0.0;
        }
        self.banks.iter().map(|b| b.total_bus_wait).sum::<u64>() as f64 / reqs as f64
    }

    /// Mean queuing delay over all requests, or 0.
    pub fn mean_queuing(&self) -> f64 {
        let reqs = self.total_requests();
        if reqs == 0 {
            return 0.0;
        }
        self.banks.iter().map(|b| b.total_queuing).sum::<u64>() as f64 / reqs as f64
    }

    /// Inter-arrival times (cycles) of requests to `bank`; empty when
    /// arrival recording was off or the bank saw fewer than two requests.
    pub fn interarrival_times(&self, bank: u32) -> Vec<u64> {
        let Some(a) = self.arrivals.get(bank as usize) else {
            return Vec::new();
        };
        if a.len() < 2 {
            return Vec::new();
        }
        a.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Fraction of requests landing on each bank — the memory-request
    /// distribution of the paper's Eq. 7 weights.
    pub fn request_distribution(&self) -> Vec<f64> {
        let total = self.total_requests();
        if total == 0 {
            return vec![0.0; self.banks.len()];
        }
        self.banks
            .iter()
            .map(|b| b.requests as f64 / total as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_totals() {
        let mut s = DramStats::new(4, true);
        s.record(0, 0, AccessKind::Miss, 0, 417, 0);
        s.record(0, 10, AccessKind::Hit, 5, 203, 2);
        s.record(2, 20, AccessKind::Conflict, 0, 566, 0);
        assert_eq!(s.total_requests(), 3);
        assert_eq!(s.row_buffer_totals(), (1, 1, 1));
        assert_eq!(s.interarrival_times(0), vec![10]);
        assert!(s.interarrival_times(1).is_empty());
        let d = s.request_distribution();
        assert!((d[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((d[2] - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.mean_latency() - (417.0 + 203.0 + 566.0) / 3.0).abs() < 1e-9);
        assert!((s.mean_queuing() - 5.0 / 3.0).abs() < 1e-9);
        assert!((s.mean_bus_wait() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn arrivals_not_recorded_when_disabled() {
        let mut s = DramStats::new(2, false);
        s.record(0, 0, AccessKind::Miss, 0, 417, 0);
        s.record(0, 5, AccessKind::Hit, 0, 198, 0);
        assert!(s.interarrival_times(0).is_empty());
        assert_eq!(s.total_requests(), 2);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = DramStats::new(2, true);
        assert_eq!(s.mean_latency(), 0.0);
        assert_eq!(s.mean_queuing(), 0.0);
        assert_eq!(s.request_distribution(), vec![0.0, 0.0]);
    }
}
