//! Memory-controller scheduling policies beyond in-order FIFO.
//!
//! The paper's queuing model treats each bank as a FIFO server, which is
//! what [`crate::controller::MemoryController`] implements. Real GDDR5
//! controllers reorder: **FR-FCFS** (first-ready, first-come-first-served
//! — Rixner et al., the paper's reference [18]) prioritizes requests that
//! hit the open row, trading fairness for row-buffer locality. This
//! module provides a batch-scheduling DRAM front end that the simulator
//! (or a curious user) can run in either policy to quantify how much the
//! FIFO assumption costs — one of the design-choice ablations called out
//! in DESIGN.md (`cargo run -p hms-bench --bin sweep_sched`).

use hms_types::DramTimingConfig;

use crate::bank::{AccessKind, BankState};
use crate::mapping::AddressMapping;

/// Scheduling policy for a batch of outstanding requests at one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Serve strictly in arrival order (the paper's queuing-model
    /// assumption).
    Fifo,
    /// First-ready FCFS: among queued requests, serve row-buffer hits
    /// first (in arrival order), then the oldest remaining request.
    FrFcfs,
}

/// Page-management policy after each access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PagePolicy {
    /// Leave the row open (the default throughout the workspace; what
    /// the paper's Algorithm 1 measures on the K80).
    Open,
    /// Precharge after every access: every access becomes a row miss,
    /// removing both row-buffer hits *and* conflicts.
    Closed,
}

/// One request in a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchRequest {
    pub addr: u64,
    pub arrival: u64,
}

/// Per-request outcome of a batch schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledAccess {
    /// Index into the input batch.
    pub index: usize,
    pub complete_at: u64,
    pub kind: AccessKind,
}

/// Statistics of one scheduled batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleStats {
    pub makespan: u64,
    pub total_latency: u64,
    pub hits: u64,
    pub misses: u64,
    pub conflicts: u64,
}

/// Schedule a batch of requests onto the banks of `mapping` under the
/// given policies; returns per-request completions plus aggregate
/// statistics. Arrivals may be in any order (the scheduler sorts).
pub fn schedule_batch(
    requests: &[BatchRequest],
    mapping: &AddressMapping,
    timing: &DramTimingConfig,
    policy: SchedPolicy,
    page: PagePolicy,
) -> (Vec<ScheduledAccess>, ScheduleStats) {
    let nb = mapping.total_banks as usize;
    // Partition by bank, remembering original indices.
    let mut per_bank: Vec<Vec<(usize, u64, u64)>> = vec![Vec::new(); nb]; // (idx, arrival, row)
    for (i, r) in requests.iter().enumerate() {
        let d = mapping.decode(r.addr);
        per_bank[d.bank as usize].push((i, r.arrival, d.row));
    }

    let mut out = Vec::with_capacity(requests.len());
    let mut stats = ScheduleStats {
        makespan: 0,
        total_latency: 0,
        hits: 0,
        misses: 0,
        conflicts: 0,
    };

    for queue in &mut per_bank {
        if queue.is_empty() {
            continue;
        }
        queue.sort_by_key(|&(_, arrival, _)| arrival);
        let mut bank = BankState::default();
        let mut pending: Vec<(usize, u64, u64)> = queue.clone();
        let mut now = 0u64;
        while !pending.is_empty() {
            // Requests that have arrived by `now` are eligible; if none,
            // jump to the next arrival.
            let earliest = pending.iter().map(|&(_, a, _)| a).min().expect("non-empty");
            now = now.max(earliest);
            let eligible: Vec<usize> = pending
                .iter()
                .enumerate()
                .filter(|(_, &(_, a, _))| a <= now)
                .map(|(qi, _)| qi)
                .collect();
            // Pick per policy.
            let pick = match policy {
                SchedPolicy::Fifo => eligible[0],
                SchedPolicy::FrFcfs => {
                    // Oldest row-buffer hit, else oldest overall.
                    eligible
                        .iter()
                        .copied()
                        .find(|&qi| bank.classify(pending[qi].2) == AccessKind::Hit)
                        .unwrap_or(eligible[0])
                }
            };
            let (idx, arrival, row) = pending.remove(pick);
            let (done, kind, _q) = bank.service(now.max(arrival), row, timing);
            if page == PagePolicy::Closed {
                bank.precharge();
            }
            now = done;
            let complete_at = done + timing.burst_cycles;
            match kind {
                AccessKind::Hit => stats.hits += 1,
                AccessKind::Miss => stats.misses += 1,
                AccessKind::Conflict => stats.conflicts += 1,
            }
            stats.total_latency += complete_at - arrival;
            stats.makespan = stats.makespan.max(complete_at);
            out.push(ScheduledAccess {
                index: idx,
                complete_at,
                kind,
            });
        }
    }
    out.sort_by_key(|a| a.index);
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hms_types::GpuConfig;

    fn setup() -> (AddressMapping, DramTimingConfig) {
        let t = GpuConfig::tesla_k80().dram;
        (AddressMapping::k80_like(t.total_banks()), t)
    }

    /// Two interleaved rows at one bank: FIFO ping-pongs (conflicts),
    /// FR-FCFS groups the same-row requests (hits).
    #[test]
    fn frfcfs_reduces_conflicts_on_interleaved_rows() {
        let (m, t) = setup();
        let row_bit = m.row_bit_positions[0];
        let reqs: Vec<BatchRequest> = (0..16u64)
            .map(|i| BatchRequest {
                addr: (i & 1) << row_bit,
                arrival: 0,
            })
            .collect();
        let (_, fifo) = schedule_batch(&reqs, &m, &t, SchedPolicy::Fifo, PagePolicy::Open);
        let (_, fr) = schedule_batch(&reqs, &m, &t, SchedPolicy::FrFcfs, PagePolicy::Open);
        assert!(
            fifo.conflicts > fr.conflicts,
            "{} vs {}",
            fifo.conflicts,
            fr.conflicts
        );
        assert!(fr.makespan < fifo.makespan);
        assert!(fr.hits > fifo.hits);
    }

    #[test]
    fn closed_page_turns_everything_into_misses() {
        let (m, t) = setup();
        let reqs: Vec<BatchRequest> = (0..8u64)
            .map(|i| BatchRequest {
                addr: i * 32,
                arrival: 0,
            })
            .collect();
        let (_, s) = schedule_batch(&reqs, &m, &t, SchedPolicy::Fifo, PagePolicy::Closed);
        assert_eq!(s.hits, 0);
        assert_eq!(s.conflicts, 0);
        assert_eq!(s.misses, 8);
    }

    #[test]
    fn open_page_streaming_hits() {
        let (m, t) = setup();
        let reqs: Vec<BatchRequest> = (0..8u64)
            .map(|i| BatchRequest {
                addr: i * 32,
                arrival: 0,
            })
            .collect();
        let (_, s) = schedule_batch(&reqs, &m, &t, SchedPolicy::Fifo, PagePolicy::Open);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 7);
    }

    #[test]
    fn every_request_is_scheduled_exactly_once() {
        let (m, t) = setup();
        let reqs: Vec<BatchRequest> = (0..64u64)
            .map(|i| BatchRequest {
                addr: i * 7919 % (1 << 28),
                arrival: i * 3,
            })
            .collect();
        for policy in [SchedPolicy::Fifo, SchedPolicy::FrFcfs] {
            let (accesses, s) = schedule_batch(&reqs, &m, &t, policy, PagePolicy::Open);
            assert_eq!(accesses.len(), reqs.len());
            let mut idxs: Vec<usize> = accesses.iter().map(|a| a.index).collect();
            idxs.dedup();
            assert_eq!(idxs.len(), reqs.len());
            assert_eq!(s.hits + s.misses + s.conflicts, reqs.len() as u64);
            // Completions never precede arrivals.
            for a in &accesses {
                assert!(a.complete_at >= reqs[a.index].arrival + t.burst_cycles);
            }
        }
    }

    #[test]
    fn frfcfs_never_slower_than_fifo_per_bank() {
        let (m, t) = setup();
        // Adversarial-ish mixed pattern.
        let reqs: Vec<BatchRequest> = (0..48u64)
            .map(|i| BatchRequest {
                addr: ((i % 3) << m.row_bit_positions[0]) | ((i % 5) * 32),
                arrival: 0,
            })
            .collect();
        let (_, fifo) = schedule_batch(&reqs, &m, &t, SchedPolicy::Fifo, PagePolicy::Open);
        let (_, fr) = schedule_batch(&reqs, &m, &t, SchedPolicy::FrFcfs, PagePolicy::Open);
        assert!(fr.makespan <= fifo.makespan);
    }
}
