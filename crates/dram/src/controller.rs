//! The memory controller: per-bank FIFO queues plus channel data buses.
//!
//! "A memory request, after the last level cache, is distributed to a
//! memory bank. If the memory request cannot be serviced by the memory
//! bank immediately, the memory request is placed into the queue
//! associated with the memory bank." (paper Section III-C1, Figure 3.)
//!
//! The controller is *timestamp-driven*: each request carries its arrival
//! cycle and the controller resolves its completion cycle immediately
//! using the bank's `free_at` bookkeeping. Requests must therefore be
//! submitted in non-decreasing arrival order (the simulator's cycle loop
//! guarantees this).

use hms_types::DramTimingConfig;

use crate::bank::{AccessKind, BankState};
use crate::mapping::AddressMapping;
use crate::stats::DramStats;

/// Completion information for one DRAM request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramRequestResult {
    /// Cycle at which the data is available.
    pub complete_at: u64,
    /// Total latency (queuing + service + bus) in cycles.
    pub latency: u64,
    /// Row-buffer outcome.
    pub kind: AccessKind,
    /// Global bank id serviced.
    pub bank: u32,
    /// Cycles spent waiting for the bank (the queuing delay the paper's
    /// G/G/1 model approximates).
    pub queuing: u64,
}

/// A GDDR5 memory controller front-ending all channels and banks.
#[derive(Debug, Clone)]
pub struct MemoryController {
    mapping: AddressMapping,
    timing: DramTimingConfig,
    banks: Vec<BankState>,
    stats: DramStats,
    last_arrival: u64,
    /// Cycle of the next auto-refresh boundary (u64::MAX when disabled).
    next_refresh: u64,
}

impl MemoryController {
    /// Build a controller; `record_arrivals` enables per-bank arrival
    /// logging (needed only for distribution analysis — it costs memory
    /// proportional to the request count).
    pub fn new(mapping: AddressMapping, timing: DramTimingConfig, record_arrivals: bool) -> Self {
        let nb = timing.total_banks();
        assert_eq!(
            mapping.total_banks, nb,
            "mapping folds onto {} banks but timing configures {}",
            mapping.total_banks, nb
        );
        MemoryController {
            mapping,
            timing,
            banks: vec![BankState::default(); nb as usize],
            stats: DramStats::new(nb, record_arrivals),
            last_arrival: 0,
            next_refresh: if timing.refresh_interval_cycles == 0 {
                u64::MAX
            } else {
                timing.refresh_interval_cycles
            },
        }
    }

    /// Service one request for the transaction containing `addr`, arriving
    /// at cycle `arrival`.
    pub fn access(&mut self, arrival: u64, addr: u64) -> DramRequestResult {
        debug_assert!(
            arrival >= self.last_arrival,
            "requests must arrive in non-decreasing cycle order"
        );
        self.last_arrival = arrival;
        // Auto-refresh: every tREFI boundary closes all row buffers,
        // turning the next access per bank into a plain row miss.
        while arrival >= self.next_refresh {
            for b in &mut self.banks {
                b.precharge();
            }
            self.next_refresh += self.timing.refresh_interval_cycles;
        }
        let d = self.mapping.decode(addr);
        let bank = &mut self.banks[d.bank as usize];
        let (bank_done, kind, queuing) = bank.service(arrival, d.row, &self.timing);
        // Data transfer occupies the channel bus for one burst. At the
        // K80's pin bandwidth the bus can move ~2 transactions per core
        // cycle per channel, so cross-request bus contention is
        // negligible at kernel scale and is not modeled; the burst is a
        // fixed transfer-time addend.
        let complete_at = bank_done + self.timing.burst_cycles;
        let latency = complete_at - arrival;
        self.stats
            .record(d.bank, arrival, kind, queuing, latency, 0);
        DramRequestResult {
            complete_at,
            latency,
            kind,
            bank: d.bank,
            queuing,
        }
    }

    /// Classify what `addr` *would* experience right now, without issuing.
    pub fn peek_kind(&self, addr: u64) -> AccessKind {
        let d = self.mapping.decode(addr);
        self.banks[d.bank as usize].classify(d.row)
    }

    /// Close every row buffer (refresh boundary / between Algorithm-1
    /// probe rounds).
    pub fn precharge_all(&mut self) {
        for b in &mut self.banks {
            b.precharge();
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// The mapping in force (the simulator owns the "hidden" ground truth;
    /// Algorithm 1 must not look at this — it only calls [`Self::access`]).
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    pub fn timing(&self) -> &DramTimingConfig {
        &self.timing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hms_types::GpuConfig;

    fn ctl() -> MemoryController {
        let t = GpuConfig::tesla_k80().dram;
        MemoryController::new(AddressMapping::k80_like(t.total_banks()), t, true)
    }

    #[test]
    fn streaming_hits_row_buffer() {
        let mut c = ctl();
        let first = c.access(0, 0);
        assert_eq!(first.kind, AccessKind::Miss);
        // Next transaction in the same row, arriving after the first
        // completes: pure row-buffer hit with no queuing.
        let second = c.access(first.complete_at, 32);
        assert_eq!(second.kind, AccessKind::Hit);
        assert_eq!(second.queuing, 0);
        assert!(second.latency < first.latency);
    }

    #[test]
    fn burst_of_same_bank_requests_queues() {
        let mut c = ctl();
        // 8 simultaneous requests to the same row: each waits on the
        // previous (the per-bank FIFO of Figure 3).
        let mut last_latency = 0;
        for i in 0..8 {
            let r = c.access(0, 32 * i);
            assert!(r.latency >= last_latency);
            last_latency = r.latency;
        }
        assert!(c.stats().mean_queuing() > 0.0);
    }

    #[test]
    fn spread_banks_serve_in_parallel() {
        let t = GpuConfig::tesla_k80().dram;
        let mapping = AddressMapping::k80_like(t.total_banks());
        // Find 8 addresses on distinct banks and distinct channels where
        // possible.
        let mut addrs = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut a = 0u64;
        while addrs.len() < 8 {
            let d = mapping.decode(a);
            if seen.insert(d.bank) {
                addrs.push(a);
            }
            a += 2048; // stride through bank bits
        }
        let mut c = MemoryController::new(mapping, t, false);
        let latencies: Vec<u64> = addrs.iter().map(|&x| c.access(0, x).latency).collect();
        // No bank-level queuing: all requests are misses served in
        // parallel, differing only by channel-bus serialization.
        let worst = *latencies.iter().max().unwrap();
        assert!(worst < t.miss_cycles + 8 * t.burst_cycles + 1);
        assert_eq!(c.stats().mean_queuing(), 0.0);
    }

    #[test]
    fn row_conflict_costs_most() {
        let mut c = ctl();
        let m = c.access(0, 0);
        // Same bank, different row (flip a row bit at position 17).
        let r = c.access(m.complete_at, 1 << 17);
        assert_eq!(r.kind, AccessKind::Conflict);
        assert!(r.latency > m.latency);
    }

    #[test]
    fn burst_is_added_to_every_completion() {
        let t = GpuConfig::tesla_k80().dram;
        let mapping = AddressMapping::k80_like(t.total_banks());
        let mut c = MemoryController::new(mapping, t, false);
        let r = c.access(0, 0);
        assert_eq!(r.complete_at, t.miss_cycles + t.burst_cycles);
    }

    #[test]
    fn refresh_closes_rows() {
        let mut t = GpuConfig::tesla_k80().dram;
        t.refresh_interval_cycles = 10_000;
        let mapping = AddressMapping::k80_like(t.total_banks());
        let mut c = MemoryController::new(mapping, t, false);
        let first = c.access(0, 0);
        assert_eq!(first.kind, AccessKind::Miss);
        // Still within the refresh window: row-buffer hit.
        let warm = c.access(first.complete_at, 32);
        assert_eq!(warm.kind, AccessKind::Hit);
        // Past the boundary: the row was closed by refresh.
        let cold = c.access(10_001, 64);
        assert_eq!(cold.kind, AccessKind::Miss);
    }

    #[test]
    fn refresh_disabled_keeps_rows_open() {
        let mut t = GpuConfig::tesla_k80().dram;
        t.refresh_interval_cycles = 0;
        let mapping = AddressMapping::k80_like(t.total_banks());
        let mut c = MemoryController::new(mapping, t, false);
        let first = c.access(0, 0);
        let much_later = c.access(first.complete_at + 1_000_000, 32);
        assert_eq!(much_later.kind, AccessKind::Hit);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-decreasing")]
    fn out_of_order_arrivals_rejected_in_debug() {
        let mut c = ctl();
        c.access(100, 0);
        c.access(50, 64);
    }
}
