//! # hms-dram
//!
//! A GDDR5 off-chip memory model for a Kepler-class GPU, built to exercise
//! every off-chip effect the paper's `T_mem` model captures:
//!
//! * an **address-mapping scheme** resolving a physical address into
//!   channel/bank/row/column indexes ([`mapping`]);
//! * **banks with row buffers** whose service time depends on row-buffer
//!   hit, miss, or conflict ([`bank`]) — defaults match the paper's
//!   measured 352/742/1008 ns;
//! * **per-bank queues** at the memory controller, so concurrent requests
//!   to a busy bank experience queuing delay ([`controller`]) — the
//!   behaviour the paper models with a G/G/1 queue per bank;
//! * the paper's **Algorithm 1**: a microbenchmark that probes an unknown
//!   mapping one address bit at a time and classifies each bit as column,
//!   row, or bank from the observed latency ([`detect`]).
//!
//! The controller also records per-bank arrival streams so the harness can
//! reproduce Figure 4's inter-arrival distribution analysis.

pub mod bank;
pub mod controller;
pub mod detect;
pub mod mapping;
pub mod sched;
pub mod stats;

pub use bank::{AccessKind, BankState};
pub use controller::{DramRequestResult, MemoryController};
pub use detect::{detect_mapping, BitClass, DetectedMapping};
pub use mapping::{AddressMapping, DecodePlan, DecodedAddr};
pub use sched::{schedule_batch, BatchRequest, PagePolicy, SchedPolicy};
pub use stats::DramStats;
