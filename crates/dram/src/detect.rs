//! The paper's **Algorithm 1**: black-box detection of the DRAM address
//! mapping and of the row-buffer hit/miss/conflict latencies.
//!
//! For each address bit `x`, generate two addresses differing only in `x`
//! and access them back to back on a quiet memory system:
//!
//! * the first access always misses (its bank was never touched);
//! * if `x` is a **column** (or byte-offset) bit, the second access lands
//!   in the same open row — a row-buffer **hit**, the shortest latency;
//! * if `x` is a **row** bit, the second access conflicts with the open
//!   row — the **longest** latency;
//! * otherwise `x` selects a different **bank**, so the second access is
//!   another plain miss (the middle latency).
//!
//! The probe only calls [`MemoryController::access`] — it never inspects
//! the controller's mapping, exactly like the CUDA microbenchmark the
//! paper runs with `ld.global.cs` uncached loads on a single thread.

use crate::controller::MemoryController;

/// Classification of one address bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitClass {
    /// Flipping the bit keeps bank and row: column or byte-offset bit.
    Column,
    /// Flipping the bit keeps the bank but changes the row.
    Row,
    /// Flipping the bit changes the bank.
    Bank,
}

/// Result of running Algorithm 1.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectedMapping {
    /// Per-bit classification, index = bit position.
    pub classes: Vec<BitClass>,
    /// Observed row-buffer-hit latency (cycles, bus included).
    pub hit_latency: u64,
    /// Observed row-buffer-miss latency.
    pub miss_latency: u64,
    /// Observed row-conflict latency.
    pub conflict_latency: u64,
}

impl DetectedMapping {
    /// Bit positions classified as column/byte (the shortest-latency
    /// group of the paper's step 11).
    pub fn column_bits(&self) -> Vec<u32> {
        self.bits_of(BitClass::Column)
    }

    /// Bit positions classified as row (the longest-latency group).
    pub fn row_bits(&self) -> Vec<u32> {
        self.bits_of(BitClass::Row)
    }

    /// Bit positions whose combination identifies a bank.
    pub fn bank_bits(&self) -> Vec<u32> {
        self.bits_of(BitClass::Bank)
    }

    fn bits_of(&self, class: BitClass) -> Vec<u32> {
        self.classes
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == class)
            .map(|(i, _)| i as u32)
            .collect()
    }
}

/// Run Algorithm 1 against a fresh controller produced by `make` for each
/// probed bit (a fresh controller is the equivalent of the paper's fresh
/// kernel launch: cold row buffers, idle queues).
///
/// `addr_bits` limits the probe to the meaningful address width.
pub fn detect_mapping<F>(mut make: F, addr_bits: u32) -> DetectedMapping
where
    F: FnMut() -> MemoryController,
{
    assert!(addr_bits > 0 && addr_bits <= 48);
    // Pass 1: collect (first, second) latency per bit.
    let mut first_lat = Vec::with_capacity(addr_bits as usize);
    let mut second_lat = Vec::with_capacity(addr_bits as usize);
    for x in 0..addr_bits {
        let mut ctl = make();
        let a = 0u64;
        let b = 1u64 << x;
        let r1 = ctl.access(0, a);
        // Quiet system: issue the second access only after the first
        // completed, so queuing never pollutes the measurement.
        let r2 = ctl.access(r1.complete_at, b);
        first_lat.push(r1.latency);
        second_lat.push(r2.latency);
    }
    // Pass 2 (paper step 11): classify bits into three groups by the
    // second access's latency. The first access is always a miss, giving
    // the miss reference directly.
    let miss_latency = first_lat[0];
    debug_assert!(first_lat.iter().all(|&l| l == miss_latency));
    let shortest = *second_lat.iter().min().expect("probed at least one bit");
    let longest = *second_lat.iter().max().expect("probed at least one bit");
    let classes = second_lat
        .iter()
        .map(|&l| {
            if l == shortest && shortest < miss_latency {
                BitClass::Column
            } else if l == longest && longest > miss_latency {
                BitClass::Row
            } else {
                BitClass::Bank
            }
        })
        .collect();
    DetectedMapping {
        classes,
        hit_latency: shortest,
        miss_latency,
        conflict_latency: longest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::AddressMapping;
    use hms_types::GpuConfig;

    fn probe(mapping: AddressMapping) -> DetectedMapping {
        let timing = {
            let mut t = GpuConfig::tesla_k80().dram;
            // Match bank count to the mapping under test.
            t.channels = 1;
            t.banks_per_channel = mapping.total_banks;
            t
        };
        let bits = mapping.addr_bits;
        detect_mapping(
            || MemoryController::new(mapping.clone(), timing, false),
            bits,
        )
    }

    #[test]
    fn recovers_k80_like_mapping() {
        let truth = AddressMapping::k80_like(96);
        let d = probe(truth.clone());
        // Columns: the true column bits plus the byte-offset bits.
        let mut expected_cols: Vec<u32> = (0..truth.byte_bits).collect();
        expected_cols.extend(&truth.col_bit_positions);
        assert_eq!(d.column_bits(), expected_cols);
        // Rows detected exactly.
        assert_eq!(d.row_bits(), truth.row_bit_positions);
        // Everything else identifies banks: bits 11–16 plus the top
        // bit 31, which is neither byte, column, nor row in this layout.
        assert_eq!(d.bank_bits(), vec![11, 12, 13, 14, 15, 16, 31]);
    }

    #[test]
    fn recovers_paper_reported_mapping() {
        // The exotic layout the paper reports (rows 8–21, cols 30–32,
        // bytes 0–2) is detected just as well — the algorithm never
        // assumes bit ordering.
        let truth = AddressMapping::paper_k80(96);
        let d = probe(truth.clone());
        let mut expected_cols: Vec<u32> = (0..3).collect();
        expected_cols.extend(&truth.col_bit_positions);
        assert_eq!(d.column_bits(), expected_cols);
        assert_eq!(d.row_bits(), truth.row_bit_positions);
    }

    #[test]
    fn measures_latencies_in_order() {
        let d = probe(AddressMapping::k80_like(96));
        assert!(d.hit_latency < d.miss_latency);
        assert!(d.miss_latency < d.conflict_latency);
        // With the default K80 timing the measured values are the
        // configured service times plus one channel burst.
        let t = GpuConfig::tesla_k80().dram;
        assert_eq!(d.hit_latency, t.hit_cycles + t.burst_cycles);
        assert_eq!(d.miss_latency, t.miss_cycles + t.burst_cycles);
        assert_eq!(d.conflict_latency, t.conflict_cycles + t.burst_cycles);
    }

    #[test]
    fn latency_ratio_matches_paper_measurement() {
        // Paper: 352 ns hit vs 742 ns miss — "up to 110% difference".
        let d = probe(AddressMapping::k80_like(96));
        let ratio = d.miss_latency as f64 / d.hit_latency as f64;
        assert!(ratio > 2.0 && ratio < 2.2, "ratio = {ratio}");
    }
}
