//! The DRAM address-mapping scheme.
//!
//! "The address mapping scheme denotes how a given memory address is
//! resolved into indexes in terms of channel ID, rank ID, bank ID, row
//! address, and column address." (paper Section III-C2.)
//!
//! Following the paper's model needs, the mapping distinguishes three
//! classes of bits: **column bits** (same bank, same row — a row-buffer
//! hit when flipped), **row bits** (same bank, different row — a row
//! conflict when flipped) and everything else above the byte offset, whose
//! combination uniquely identifies a memory bank. Channel and rank are not
//! modeled separately; a "bank" here is a globally-identified bank, and the
//! controller derives its channel as `bank_id / banks_per_channel`.

/// Decoded coordinates of one physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedAddr {
    /// Global bank id in `[0, total_banks)`.
    pub bank: u32,
    /// Row index within the bank.
    pub row: u64,
    /// Column index within the row.
    pub col: u64,
}

/// An address-mapping scheme described by explicit bit positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressMapping {
    /// Number of meaningful address bits (addresses are masked to this).
    pub addr_bits: u32,
    /// Low bits addressing bytes inside one memory transaction; flipping
    /// one never changes the bank, row, or column.
    pub byte_bits: u32,
    /// Bit positions forming the column index (LSB first).
    pub col_bit_positions: Vec<u32>,
    /// Bit positions forming the row index (LSB first).
    pub row_bit_positions: Vec<u32>,
    /// Total banks the remaining ("other") bits are folded onto.
    pub total_banks: u32,
}

impl AddressMapping {
    /// Construct and sanity-check a mapping. Panics on overlapping or
    /// out-of-range bit positions — mappings are built from static
    /// configuration, so a malformed one is a programming error.
    pub fn new(
        addr_bits: u32,
        byte_bits: u32,
        col_bit_positions: Vec<u32>,
        row_bit_positions: Vec<u32>,
        total_banks: u32,
    ) -> Self {
        assert!(addr_bits <= 48, "unreasonable address width");
        assert!(total_banks > 0);
        let mut seen = vec![false; addr_bits as usize];
        for b in 0..byte_bits {
            seen[b as usize] = true;
        }
        for &p in col_bit_positions.iter().chain(&row_bit_positions) {
            assert!(p < addr_bits, "bit {p} outside {addr_bits}-bit address");
            assert!(!seen[p as usize], "bit {p} assigned twice");
            seen[p as usize] = true;
        }
        AddressMapping {
            addr_bits,
            byte_bits,
            col_bit_positions,
            row_bit_positions,
            total_banks,
        }
    }

    /// The default mapping of the simulated K80-like machine: 32-bit
    /// physical addresses, 32-byte transactions (5 byte bits), 6 column
    /// bits (64 x 32 B = 2 KiB rows), bank/channel bits 11..17, and row
    /// bits from 17 up.
    ///
    /// This is the *hidden ground truth* that `detect::detect_mapping`
    /// (the paper's Algorithm 1) must recover; the paper's own K80
    /// measurement reported rows at bits 8–21 and columns at bits 30–32 of
    /// the virtual address, which we preserve as [`AddressMapping::paper_k80`]
    /// for documentation, but the simulator uses this physically-plausible
    /// layout.
    pub fn k80_like(total_banks: u32) -> Self {
        AddressMapping::new(
            32,
            5,
            (5..11).collect(),  // 6 column bits
            (17..31).collect(), // 14 row bits
            total_banks,
        )
    }

    /// The bit layout the paper reports for its Tesla K80 (Section
    /// III-C2): row bits at positions 8–21 and column bits at 30–32 of the
    /// probed virtual address, byte bits in the last 3 bits.
    pub fn paper_k80(total_banks: u32) -> Self {
        AddressMapping::new(34, 3, (30..33).collect(), (8..22).collect(), total_banks)
    }

    /// Decode an address into bank/row/column coordinates.
    ///
    /// Convenience wrapper that compiles a [`DecodePlan`] per call; code
    /// decoding many addresses against one mapping should build the plan
    /// once with [`AddressMapping::plan`] and reuse it.
    pub fn decode(&self, addr: u64) -> DecodedAddr {
        self.plan().decode(addr)
    }

    /// Precompile the per-bit classification into a [`DecodePlan`] so each
    /// subsequent decode is a handful of shift/mask operations instead of
    /// scanning the position lists for every address bit.
    pub fn plan(&self) -> DecodePlan {
        // "A combination of the other bits identifies a unique memory
        // bank": every bit that is neither byte nor row nor column, in
        // ascending order (matching the bit-scan the plan replaces).
        let other_bit_positions: Vec<u32> = (self.byte_bits..self.addr_bits)
            .filter(|bit| {
                !self.col_bit_positions.contains(bit) && !self.row_bit_positions.contains(bit)
            })
            .collect();
        DecodePlan {
            addr_mask: self.addr_mask(),
            col_runs: DecodePlan::compile_runs(&self.col_bit_positions),
            row_runs: DecodePlan::compile_runs(&self.row_bit_positions),
            other_runs: DecodePlan::compile_runs(&other_bit_positions),
            col_bit_positions: self.col_bit_positions.clone(),
            row_bit_positions: self.row_bit_positions.clone(),
            other_bit_positions,
            total_banks: u64::from(self.total_banks),
        }
    }

    /// Number of distinct columns per row.
    #[inline]
    pub fn columns(&self) -> u64 {
        1u64 << self.col_bit_positions.len()
    }

    #[inline]
    pub fn addr_mask(&self) -> u64 {
        if self.addr_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << self.addr_bits) - 1
        }
    }

    /// Per-bit reference gather; [`DecodePlan`]'s run-compiled form must
    /// stay bit-identical to this (see the equivalence test).
    #[cfg_attr(not(test), allow(dead_code))]
    fn gather(addr: u64, positions: &[u32]) -> u64 {
        let mut v = 0u64;
        for (i, &p) in positions.iter().enumerate() {
            v |= ((addr >> p) & 1) << i;
        }
        v
    }
}

/// A mapping with its bit classification resolved ahead of time.
///
/// Produced by [`AddressMapping::plan`]; decodes are bit-identical to
/// [`AddressMapping::decode`] but cost only one pass over the (short)
/// position lists, with no membership scans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodePlan {
    addr_mask: u64,
    /// Maximal runs of consecutive source bits, compiled from the
    /// position lists: one `(shift, mask, out)` entry extracts a whole
    /// run with two shifts and a mask, so a decode costs a handful of
    /// run ops instead of one op per address bit.
    col_runs: Vec<GatherRun>,
    row_runs: Vec<GatherRun>,
    other_runs: Vec<GatherRun>,
    col_bit_positions: Vec<u32>,
    row_bit_positions: Vec<u32>,
    other_bit_positions: Vec<u32>,
    total_banks: u64,
}

/// One maximal run of consecutive source bits in a gather: the bits
/// `shift..shift+len` of the address land at output bits `out..out+len`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct GatherRun {
    shift: u32,
    mask: u64,
    out: u32,
}

impl DecodePlan {
    /// Compress a bit-position list into maximal consecutive runs.
    /// `gather` maps `positions[i]` to output bit `i`, so any stretch
    /// where the source positions increase by exactly 1 collapses into
    /// a single shift-mask-shift — bit-identical to the per-bit walk.
    fn compile_runs(positions: &[u32]) -> Vec<GatherRun> {
        let mut runs = Vec::new();
        let mut i = 0usize;
        while i < positions.len() {
            let start = i;
            while i + 1 < positions.len() && positions[i + 1] == positions[i] + 1 {
                i += 1;
            }
            let len = (i - start + 1) as u32;
            runs.push(GatherRun {
                shift: positions[start],
                mask: if len >= 64 {
                    u64::MAX
                } else {
                    (1u64 << len) - 1
                },
                out: start as u32,
            });
            i += 1;
        }
        runs
    }

    #[inline]
    fn gather_runs(addr: u64, runs: &[GatherRun]) -> u64 {
        let mut v = 0u64;
        for r in runs {
            v |= ((addr >> r.shift) & r.mask) << r.out;
        }
        v
    }

    /// Decode an address into bank/row/column coordinates.
    pub fn decode(&self, addr: u64) -> DecodedAddr {
        let addr = addr & self.addr_mask;
        let other = Self::gather_runs(addr, &self.other_runs);
        DecodedAddr {
            bank: (other % self.total_banks) as u32,
            row: Self::gather_runs(addr, &self.row_runs),
            col: Self::gather_runs(addr, &self.col_runs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k80_like_decodes_consistently() {
        let m = AddressMapping::k80_like(96);
        let d = m.decode(0);
        assert_eq!(
            d,
            DecodedAddr {
                bank: 0,
                row: 0,
                col: 0
            }
        );
        // Flipping a byte bit changes nothing.
        assert_eq!(m.decode(0b1), d);
        assert_eq!(m.decode(0b10000), d);
        // Flipping a column bit changes only the column.
        let c = m.decode(1 << 5);
        assert_eq!(c.bank, d.bank);
        assert_eq!(c.row, d.row);
        assert_eq!(c.col, 1);
        // Flipping a row bit changes only the row.
        let r = m.decode(1 << 17);
        assert_eq!(r.bank, d.bank);
        assert_eq!(r.col, d.col);
        assert_eq!(r.row, 1);
        // Flipping a bank bit changes the bank.
        let b = m.decode(1 << 11);
        assert_ne!(b.bank, d.bank);
        assert_eq!(b.row, d.row);
        assert_eq!(b.col, d.col);
    }

    #[test]
    fn sequential_transactions_walk_columns_first() {
        // 32-byte-stride streaming should enjoy row-buffer locality: the
        // first 64 transactions of a row share bank and row.
        let m = AddressMapping::k80_like(96);
        let base = m.decode(0);
        for t in 1..64u64 {
            let d = m.decode(t * 32);
            assert_eq!(d.bank, base.bank);
            assert_eq!(d.row, base.row);
            assert_eq!(d.col, t);
        }
        // The 65th transaction leaves the row (different bank bits).
        let next = m.decode(64 * 32);
        assert_ne!(next.bank, base.bank);
    }

    #[test]
    fn bank_fold_is_within_range() {
        let m = AddressMapping::k80_like(96);
        for i in 0..10_000u64 {
            let d = m.decode(i * 4096 + i * 7);
            assert!(d.bank < 96);
        }
    }

    #[test]
    fn paper_mapping_matches_reported_bits() {
        let m = AddressMapping::paper_k80(96);
        assert_eq!(m.byte_bits, 3);
        assert_eq!(m.row_bit_positions.len(), 14);
        assert_eq!(m.col_bit_positions, vec![30, 31, 32]);
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn overlapping_bits_rejected() {
        AddressMapping::new(32, 5, vec![5, 6], vec![6, 7], 8);
    }

    #[test]
    fn plan_matches_reference_bit_scan() {
        // The plan must reproduce the definition exactly: gather col/row
        // by their position lists, then fold every remaining non-byte bit
        // (ascending) onto the bank count.
        let reference = |m: &AddressMapping, addr: u64| -> DecodedAddr {
            let addr = addr & m.addr_mask();
            let mut other = 0u64;
            let mut out = 0u32;
            for bit in m.byte_bits..m.addr_bits {
                if m.col_bit_positions.contains(&bit) || m.row_bit_positions.contains(&bit) {
                    continue;
                }
                other |= ((addr >> bit) & 1) << out;
                out += 1;
            }
            DecodedAddr {
                bank: (other % u64::from(m.total_banks)) as u32,
                row: AddressMapping::gather(addr, &m.row_bit_positions),
                col: AddressMapping::gather(addr, &m.col_bit_positions),
            }
        };
        for m in [
            AddressMapping::k80_like(96),
            AddressMapping::paper_k80(96),
            // Deliberately unsorted position lists: gather order must hold.
            AddressMapping::new(20, 2, vec![7, 3], vec![12, 9, 15], 5),
        ] {
            let plan = m.plan();
            let mut x = 0x9e3779b97f4a7c15u64;
            for _ in 0..2000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                assert_eq!(plan.decode(x), reference(&m, x));
                assert_eq!(m.decode(x), reference(&m, x));
            }
        }
    }

    #[test]
    fn addr_mask_clips_high_bits() {
        let m = AddressMapping::k80_like(96);
        assert_eq!(m.decode(1u64 << 40), m.decode(0));
    }
}
