//! Property tests for the DRAM model: latency bounds, FIFO causality,
//! mapping decode consistency, and Algorithm-1 detection under random
//! (but well-formed) hidden mappings. Runs on the in-repo
//! `hms_stats::proptest_lite` harness; failures print an
//! `HMS_PROPTEST_SEED` replay line.

use hms_dram::{detect_mapping, AddressMapping, BitClass, MemoryController};
use hms_stats::proptest_lite::{check, check_shrink, shrink_vec, Config};
use hms_stats::rng::Rng;
use hms_types::GpuConfig;

fn timing() -> hms_types::DramTimingConfig {
    GpuConfig::tesla_k80().dram
}

/// A well-formed random mapping — byte bits at the bottom, then a
/// shuffle-free split of the remaining bits into column, bank, and row
/// fields of random widths.
fn arb_mapping(rng: &mut Rng) -> AddressMapping {
    let byte_bits = rng.gen_range(2u32..6);
    let col_bits = rng.gen_range(3u32..8);
    let bank_bits = rng.gen_range(2u32..7);
    let col: Vec<u32> = (byte_bits..byte_bits + col_bits).collect();
    let row_start = byte_bits + col_bits + bank_bits;
    let row: Vec<u32> = (row_start..row_start + 8).collect();
    let addr_bits = row_start + 8;
    AddressMapping::new(addr_bits, byte_bits, col, row, 96)
}

/// Every access latency is bounded below by hit+burst and above by
/// conflict service plus the total backlog of its bank.
#[test]
fn latency_bounds() {
    check_shrink(
        "latency_bounds",
        &Config::with_cases(64),
        |rng| {
            let n = rng.gen_range(1usize..200);
            (0..n)
                .map(|_| rng.gen_range(0u64..(1u64 << 28)))
                .collect::<Vec<_>>()
        },
        |addrs| shrink_vec(addrs),
        |addrs| {
            let t = timing();
            let mapping = AddressMapping::k80_like(t.total_banks());
            let mut ctl = MemoryController::new(mapping, t, false);
            let n = addrs.len() as u64;
            for (i, &a) in addrs.iter().enumerate() {
                let r = ctl.access(i as u64, a);
                if r.latency < t.hit_cycles + t.burst_cycles {
                    return Err(format!("latency {} below hit+burst", r.latency));
                }
                if r.latency > (t.conflict_cycles + t.burst_cycles) * n {
                    return Err(format!("latency {} beyond total backlog", r.latency));
                }
                if r.complete_at < i as u64 + t.hit_cycles {
                    return Err(format!("completion {} before issue+hit", r.complete_at));
                }
                if r.bank >= t.total_banks() {
                    return Err(format!("bank {} out of range", r.bank));
                }
            }
            let stats = ctl.stats();
            let (h, m, c) = stats.row_buffer_totals();
            if h + m + c != n {
                return Err(format!("row-buffer outcomes {h}+{m}+{c} != {n} requests"));
            }
            Ok(())
        },
    );
}

/// Per-bank FIFO causality: completions at one bank are strictly
/// increasing in arrival order.
#[test]
fn per_bank_fifo_causality() {
    check_shrink(
        "per_bank_fifo_causality",
        &Config::with_cases(64),
        |rng| {
            let n = rng.gen_range(2usize..150);
            (0..n)
                .map(|_| rng.gen_range(0u64..(1u64 << 26)))
                .collect::<Vec<_>>()
        },
        |addrs| shrink_vec(addrs),
        |addrs| {
            let t = timing();
            let mapping = AddressMapping::k80_like(t.total_banks());
            let mut ctl = MemoryController::new(mapping.clone(), t, false);
            let mut last_done = vec![0u64; t.total_banks() as usize];
            for (i, &a) in addrs.iter().enumerate() {
                let r = ctl.access(i as u64, a);
                if r.complete_at <= last_done[r.bank as usize] {
                    return Err(format!(
                        "bank {} completion {} not after previous {}",
                        r.bank, r.complete_at, last_done[r.bank as usize]
                    ));
                }
                last_done[r.bank as usize] = r.complete_at;
            }
            Ok(())
        },
    );
}

/// Decode is stable and in-range for any mapping and address.
#[test]
fn decode_is_consistent() {
    check(
        "decode_is_consistent",
        &Config::with_cases(64),
        |rng| (arb_mapping(rng), rng.next_u64()),
        |(mapping, addr)| {
            let d1 = mapping.decode(*addr);
            let d2 = mapping.decode(*addr);
            if d1 != d2 {
                return Err("decode not stable".into());
            }
            if d1.bank >= mapping.total_banks {
                return Err(format!("bank {} out of range", d1.bank));
            }
            if d1.col >= mapping.columns() {
                return Err(format!("col {} out of range", d1.col));
            }
            // Byte bits never matter.
            let d3 = mapping.decode(*addr ^ 1);
            if (d1.bank, d1.row, d1.col) != (d3.bank, d3.row, d3.col) {
                return Err("byte bit changed the decode".into());
            }
            Ok(())
        },
    );
}

/// Algorithm 1 classifies the true column and row bits correctly for any
/// well-formed hidden mapping.
#[test]
fn detection_recovers_random_mappings() {
    check(
        "detection_recovers_random_mappings",
        &Config::with_cases(64),
        arb_mapping,
        |mapping| {
            let mut t = timing();
            t.channels = 1;
            t.banks_per_channel = mapping.total_banks;
            let bits = mapping.addr_bits;
            let truth = mapping.clone();
            let hidden = mapping.clone();
            let d = detect_mapping(
                move || MemoryController::new(hidden.clone(), t, false),
                bits,
            );
            for &c in &truth.col_bit_positions {
                if d.classes[c as usize] != BitClass::Column {
                    return Err(format!(
                        "col bit {c} classified as {:?}",
                        d.classes[c as usize]
                    ));
                }
            }
            for &r in &truth.row_bit_positions {
                if d.classes[r as usize] != BitClass::Row {
                    return Err(format!(
                        "row bit {r} classified as {:?}",
                        d.classes[r as usize]
                    ));
                }
            }
            if d.hit_latency >= d.miss_latency {
                return Err("hit latency not below miss latency".into());
            }
            if d.miss_latency >= d.conflict_latency {
                return Err("miss latency not below conflict latency".into());
            }
            Ok(())
        },
    );
}
