//! Property tests for the DRAM model: latency bounds, FIFO causality,
//! mapping decode consistency, and Algorithm-1 detection under random
//! (but well-formed) hidden mappings.

use proptest::prelude::*;

use hms_dram::{
    detect_mapping, AddressMapping, BitClass, MemoryController,
};
use hms_types::GpuConfig;

fn timing() -> hms_types::DramTimingConfig {
    GpuConfig::tesla_k80().dram
}

/// Strategy: a well-formed random mapping — byte bits at the bottom,
/// then a shuffle-free split of the remaining bits into column, bank,
/// and row fields of random widths.
fn arb_mapping() -> impl Strategy<Value = AddressMapping> {
    (2u32..6, 3u32..8, 2u32..7).prop_map(|(byte_bits, col_bits, bank_bits)| {
        let col: Vec<u32> = (byte_bits..byte_bits + col_bits).collect();
        let row_start = byte_bits + col_bits + bank_bits;
        let row: Vec<u32> = (row_start..row_start + 8).collect();
        let addr_bits = row_start + 8;
        AddressMapping::new(addr_bits, byte_bits, col, row, 96)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every access latency is bounded below by hit+burst and above by
    /// conflict service plus the total backlog of its bank.
    #[test]
    fn latency_bounds(addrs in prop::collection::vec(0u64..(1u64 << 28), 1..200)) {
        let t = timing();
        let mapping = AddressMapping::k80_like(t.total_banks());
        let mut ctl = MemoryController::new(mapping, t, false);
        let n = addrs.len() as u64;
        for (i, &a) in addrs.iter().enumerate() {
            let r = ctl.access(i as u64, a);
            prop_assert!(r.latency >= t.hit_cycles + t.burst_cycles);
            prop_assert!(
                r.latency <= (t.conflict_cycles + t.burst_cycles) * n,
                "latency {} beyond total backlog", r.latency
            );
            prop_assert!(r.complete_at >= i as u64 + t.hit_cycles);
            prop_assert!(r.bank < t.total_banks());
        }
        let stats = ctl.stats();
        let (h, m, c) = stats.row_buffer_totals();
        prop_assert_eq!(h + m + c, n);
    }

    /// Per-bank FIFO causality: completions at one bank are strictly
    /// increasing in arrival order.
    #[test]
    fn per_bank_fifo_causality(addrs in prop::collection::vec(0u64..(1u64 << 26), 2..150)) {
        let t = timing();
        let mapping = AddressMapping::k80_like(t.total_banks());
        let mut ctl = MemoryController::new(mapping.clone(), t, false);
        let mut last_done = vec![0u64; t.total_banks() as usize];
        for (i, &a) in addrs.iter().enumerate() {
            let r = ctl.access(i as u64, a);
            prop_assert!(r.complete_at > last_done[r.bank as usize]);
            last_done[r.bank as usize] = r.complete_at;
        }
    }

    /// Decode is stable and in-range for any mapping and address.
    #[test]
    fn decode_is_consistent(mapping in arb_mapping(), addr in any::<u64>()) {
        let d1 = mapping.decode(addr);
        let d2 = mapping.decode(addr);
        prop_assert_eq!(d1, d2);
        prop_assert!(d1.bank < mapping.total_banks);
        prop_assert!(d1.col < mapping.columns());
        // Byte bits never matter.
        let d3 = mapping.decode(addr ^ 1);
        prop_assert_eq!(d1.bank, d3.bank);
        prop_assert_eq!(d1.row, d3.row);
        prop_assert_eq!(d1.col, d3.col);
    }

    /// Algorithm 1 classifies the true column and row bits correctly for
    /// any well-formed hidden mapping.
    #[test]
    fn detection_recovers_random_mappings(mapping in arb_mapping()) {
        let mut t = timing();
        t.channels = 1;
        t.banks_per_channel = mapping.total_banks;
        let bits = mapping.addr_bits;
        let truth = mapping.clone();
        let d = detect_mapping(
            move || MemoryController::new(mapping.clone(), t, false),
            bits,
        );
        for &c in &truth.col_bit_positions {
            prop_assert_eq!(d.classes[c as usize], BitClass::Column, "col bit {}", c);
        }
        for &r in &truth.row_bit_positions {
            prop_assert_eq!(d.classes[r as usize], BitClass::Row, "row bit {}", r);
        }
        prop_assert!(d.hit_latency < d.miss_latency);
        prop_assert!(d.miss_latency < d.conflict_latency);
    }
}
