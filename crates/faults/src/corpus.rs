//! Generated adversarial JSON corpus.
//!
//! One seed → one deterministic set of hostile documents. The corpus
//! mixes the classic decoder-killers: truncated documents, invalid
//! UTF-8 mid-string, pathological nesting depth, numbers far outside
//! f64's comfortable range, duplicate keys, raw NUL and control bytes,
//! and structurally-valid-but-semantically-wrong requests. The wire
//! decoder's contract against all of them is identical: a typed error
//! or a successful parse — never a panic, never unbounded work.

use hms_stats::rng::Rng;

/// Generate `n` adversarial byte documents from `seed`. Documents are
/// `Vec<u8>`, not `String`, because several deliberately are not UTF-8.
pub fn adversarial_json(seed: u64, n: usize) -> Vec<Vec<u8>> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n).map(|_| one_document(&mut rng)).collect()
}

/// The generator families, chosen uniformly per document.
fn one_document(rng: &mut Rng) -> Vec<u8> {
    match rng.gen_range(0usize..8) {
        0 => truncated(rng),
        1 => invalid_utf8(rng),
        2 => deep_nesting(rng),
        3 => huge_numbers(rng),
        4 => duplicate_keys(rng),
        5 => nul_bytes(rng),
        6 => token_soup(rng),
        _ => wrong_shape(rng),
    }
}

/// A plausible request prefix cut off mid-token.
fn truncated(rng: &mut Rng) -> Vec<u8> {
    let full = br#"{"kernel":"vecadd","scale":"test","moves":[{"array":"a","space":"T"}]}"#;
    let cut = rng.gen_range(1usize..full.len());
    full[..cut].to_vec()
}

/// A string literal whose bytes stop being UTF-8 partway through:
/// lone continuation bytes, overlong-encoding starts, stray 0xFF.
fn invalid_utf8(rng: &mut Rng) -> Vec<u8> {
    let mut doc = br#"{"kernel":""#.to_vec();
    for _ in 0..rng.gen_range(1usize..8) {
        doc.push(match rng.gen_range(0usize..4) {
            0 => 0x80, // continuation with no lead
            1 => 0xC0, // overlong lead
            2 => 0xFF, // never valid in UTF-8
            _ => rng.gen_range(0x80u32..0x100) as u8,
        });
    }
    doc.extend_from_slice(br#""}"#);
    doc
}

/// Arrays/objects nested far past any sane document — and sometimes
/// past the decoder's depth cap, which must answer with an error, not
/// a stack overflow.
fn deep_nesting(rng: &mut Rng) -> Vec<u8> {
    let depth = rng.gen_range(8usize..256);
    let (open, close) = if rng.gen_bool(0.5) {
        (b'[', b']')
    } else {
        (b'{', b'}')
    };
    let mut doc = Vec::with_capacity(depth * 2 + 16);
    for _ in 0..depth {
        doc.push(open);
        if open == b'{' {
            doc.extend_from_slice(br#""k":"#);
        }
    }
    doc.push(b'0');
    for _ in 0..depth {
        doc.push(close);
    }
    doc
}

/// Numbers at and beyond f64's range: giant exponents, hundreds of
/// digits, negative zero exponents, values that round to ±inf.
fn huge_numbers(rng: &mut Rng) -> Vec<u8> {
    let mut doc = br#"{"top":"#.to_vec();
    match rng.gen_range(0usize..4) {
        0 => {
            doc.extend_from_slice(b"1e");
            doc.extend_from_slice(rng.gen_range(300u32..9999).to_string().as_bytes());
        }
        1 => {
            for _ in 0..rng.gen_range(1usize..400) {
                doc.push(b'0' + rng.gen_range(0u32..10) as u8);
            }
        }
        2 => doc.extend_from_slice(b"-1e-999999"),
        _ => doc.extend_from_slice(b"18446744073709551616"), // u64::MAX + 1
    }
    doc.push(b'}');
    doc
}

/// The same key repeated with conflicting values — the decoder must
/// pick a documented winner or reject, not corrupt state.
fn duplicate_keys(rng: &mut Rng) -> Vec<u8> {
    let repeats = rng.gen_range(2usize..6);
    let mut doc = b"{".to_vec();
    for i in 0..repeats {
        if i > 0 {
            doc.push(b',');
        }
        doc.extend_from_slice(format!(r#""kernel":"k{i}""#).as_bytes());
    }
    doc.push(b'}');
    doc
}

/// NUL and other control bytes embedded raw in strings and between
/// tokens.
fn nul_bytes(rng: &mut Rng) -> Vec<u8> {
    let mut doc = br#"{"kernel":"vec"#.to_vec();
    for _ in 0..rng.gen_range(1usize..5) {
        doc.push(rng.gen_range(0u32..0x20) as u8);
    }
    doc.extend_from_slice(br#"add"}"#);
    doc
}

/// Random JSON-ish token soup: brackets, colons, quotes in no valid
/// order.
fn token_soup(rng: &mut Rng) -> Vec<u8> {
    const TOKENS: &[&[u8]] = &[
        b"{", b"}", b"[", b"]", b":", b",", b"\"", b"true", b"null", b"-", b"1.5e", b"\\u00",
    ];
    let mut doc = Vec::new();
    for _ in 0..rng.gen_range(3usize..24) {
        doc.extend_from_slice(TOKENS[rng.gen_range(0usize..TOKENS.len())]);
    }
    doc
}

/// Valid JSON of the wrong shape: scalars where objects go, unknown
/// fields, wrong types for known fields. These must fail *semantic*
/// validation (4xx), exercising the layer above the parser.
fn wrong_shape(rng: &mut Rng) -> Vec<u8> {
    const SHAPES: &[&[u8]] = &[
        b"null",
        b"[]",
        b"42",
        br#""kernel""#,
        br#"{"kernel":42}"#,
        br#"{"kernel":"vecadd","moves":"nope"}"#,
        br#"{"kernel":"vecadd","bogus_field":1}"#,
        br#"{"moves":[{"array":"a","space":"T"}]}"#,
    ];
    SHAPES[rng.gen_range(0usize..SHAPES.len())].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_replays_bit_identically() {
        assert_eq!(adversarial_json(99, 64), adversarial_json(99, 64));
        assert_ne!(adversarial_json(99, 64), adversarial_json(100, 64));
    }

    #[test]
    fn corpus_covers_every_family() {
        // 256 documents over 8 uniform families: each family appears
        // with overwhelming probability; assert via distinguishing
        // markers so a generator can't silently drop out.
        let docs = adversarial_json(1, 256);
        assert!(docs.iter().any(|d| d.iter().any(|&b| b == 0))); // NUL
        assert!(docs.iter().any(|d| d.iter().any(|&b| b >= 0x80))); // non-UTF-8
        assert!(docs.iter().any(|d| d
            .windows(8)
            .any(|w| w == b"[[[[[[[[" || w == b"{\"k\":{\"k" || w[..2] == *b"[[")));
        assert!(docs.iter().any(|d| d.starts_with(b"{\"kernel\":\"k0\""))); // dup keys
    }

    #[test]
    fn documents_are_bounded() {
        for d in adversarial_json(7, 512) {
            assert!(d.len() < 4096, "corpus doc unexpectedly huge: {}", d.len());
        }
    }
}
