//! Deterministic fault injection for the placement-advisory stack.
//!
//! The serving layer (PR 3) exposed the paper's models to untrusted
//! network input; this crate supplies the other half of that contract —
//! a way to *prove*, repeatably, that no malformed, truncated, slow, or
//! adversarial request can panic the process, hang a worker, or smuggle
//! an unflagged nonsense number past the API. Everything here is
//! seed-driven: a failing scenario is reproduced by re-running with the
//! seed printed in the failure message, never by luck.
//!
//! Three pieces:
//!
//! * [`FaultPlan`] / [`FaultKind`] — a deterministic schedule of fault
//!   scenarios expanded from one `u64` seed ([`plan`]).
//! * [`corpus::adversarial_json`] — a generated corpus of hostile JSON
//!   documents (truncated UTF-8, deep nesting, huge numbers, duplicate
//!   keys, NUL bytes) shared by the wire property tests and the chaos
//!   suite ([`corpus`]).
//! * [`FaultClient`] — a TCP client that *commits* each fault against a
//!   live server and classifies the observable outcome
//!   ([`client`]), plus [`backoff::retry_with_backoff`] for the
//!   benchmark client's retry loop ([`backoff`]).
//! * [`ResourceFaultPlan`] / [`FaultyFs`] — seed-replayable *resource*
//!   faults: disk corruption against the skeleton cache, worker-pool
//!   stalls, and deadline-clock skew ([`resource`]).
//!
//! The crate is std-only and is a dependency of tests and benches, not
//! of the server: with no `FaultClient` pointed at it (and no
//! [`FaultyFs`] injected), the serving path runs exactly the code it
//! runs in production.

pub mod backoff;
pub mod client;
pub mod corpus;
pub mod plan;
pub mod resource;

pub use backoff::{retry_with_backoff, BackoffPolicy};
pub use client::{FaultClient, FaultOutcome};
pub use corpus::adversarial_json;
pub use plan::{FaultCase, FaultKind, FaultPlan};
pub use resource::{FaultyFs, FsFault, ResourceFaultCase, ResourceFaultKind, ResourceFaultPlan};
