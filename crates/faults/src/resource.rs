//! Seed-replayable *resource* fault schedules: the disk, the worker
//! pool, and the clock, as opposed to the connection faults in
//! [`plan`](crate::plan).
//!
//! A [`ResourceFaultPlan`] expands one 64-bit seed exactly like a
//! [`FaultPlan`](crate::plan::FaultPlan): same seed → same schedule,
//! and any plan of length ≥ [`ResourceFaultKind::ALL`]`.len()` covers
//! every kind at least once. The disk kinds are committed through
//! [`FaultyFs`] — a deterministic [`CacheFs`] implementation injected
//! into the engine's skeleton cache — while [`PoolStall`] and
//! [`ClockSkew`] are committed by the chaos suite against the server's
//! own injection points (a stalling compute route, the deadline-clock
//! skew knob on `ServerHandle`).
//!
//! [`PoolStall`]: ResourceFaultKind::PoolStall
//! [`ClockSkew`]: ResourceFaultKind::ClockSkew

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use hms_core::skelcache::{CacheFs, RealFs};
use hms_stats::rng::Rng;

/// One injectable resource fault class, and the guarantee the stack
/// upholds against it (documented in DESIGN.md §15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceFaultKind {
    /// The skeleton-cache write fails mid-file as if the disk filled
    /// (a partial temp file is left behind and even the cleanup unlink
    /// fails). Guarantee: the store is swallowed, predictions are
    /// byte-identical to a cache-less run, and the next cache open
    /// sweeps the stranded temp.
    DiskEnospc,
    /// The write silently persists only a prefix of the file (torn
    /// write / power-cut image). Guarantee: the length + checksum
    /// checks reject the file on load; one rebuild, never garbage.
    DiskTornWrite,
    /// A read returns the stored bytes with one bit flipped.
    /// Guarantee: the checksum rejects the payload; rebuild, never a
    /// wrong prediction, and the warm in-process cache is never
    /// poisoned by the corrupt file.
    DiskBitRot,
    /// The atomic rename at the end of a store fails (cross-device
    /// move, permission flip, antivirus hold). Guarantee: the store is
    /// swallowed, the temp is cleaned, reads keep missing.
    DiskRenameFail,
    /// A compute task occupies a worker slot and never completes.
    /// Guarantee: the pool watchdog cancels it (cooperatively for
    /// searches — partial results out; forcibly for wedged tasks — a
    /// watchdog 504), and the pool keeps serving.
    PoolStall,
    /// The deadline clock is skewed so in-flight requests appear to
    /// have less (or no) time left. Guarantee: `/v1/search` degrades
    /// down the ladder (never 5xx for in-quota traffic) and recovers
    /// to non-degraded once the skew clears.
    ClockSkew,
}

impl ResourceFaultKind {
    /// Every resource fault class, in schedule order.
    pub const ALL: [ResourceFaultKind; 6] = [
        ResourceFaultKind::DiskEnospc,
        ResourceFaultKind::DiskTornWrite,
        ResourceFaultKind::DiskBitRot,
        ResourceFaultKind::DiskRenameFail,
        ResourceFaultKind::PoolStall,
        ResourceFaultKind::ClockSkew,
    ];

    /// Stable label for failure messages and metrics.
    pub fn label(self) -> &'static str {
        match self {
            ResourceFaultKind::DiskEnospc => "disk_enospc",
            ResourceFaultKind::DiskTornWrite => "disk_torn_write",
            ResourceFaultKind::DiskBitRot => "disk_bit_rot",
            ResourceFaultKind::DiskRenameFail => "disk_rename_fail",
            ResourceFaultKind::PoolStall => "pool_stall",
            ResourceFaultKind::ClockSkew => "clock_skew",
        }
    }

    /// The [`FaultyFs`] mode that commits this kind, for the disk
    /// kinds; `None` for the pool/clock kinds, which are committed
    /// against the server instead.
    pub fn fs_fault(self) -> Option<FsFault> {
        match self {
            ResourceFaultKind::DiskEnospc => Some(FsFault::Enospc),
            ResourceFaultKind::DiskTornWrite => Some(FsFault::TornWrite),
            ResourceFaultKind::DiskBitRot => Some(FsFault::BitRot),
            ResourceFaultKind::DiskRenameFail => Some(FsFault::RenameFail),
            ResourceFaultKind::PoolStall | ResourceFaultKind::ClockSkew => None,
        }
    }
}

/// One scheduled resource fault: the class plus a per-case seed fixing
/// every free choice inside it (which bit rots, how much of a torn
/// write survives, how hard the clock skews).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceFaultCase {
    pub kind: ResourceFaultKind,
    pub seed: u64,
}

impl ResourceFaultCase {
    /// The one-line replay recipe printed when a case fails its
    /// guarantee.
    pub fn replay_line(&self, plan_seed: u64) -> String {
        format!(
            "replay: HMS_CHAOS_SEED={plan_seed} (resource case {} seed {:#x})",
            self.kind.label(),
            self.seed
        )
    }

    /// Deterministic clock-skew magnitude for a [`ClockSkew`] case:
    /// always enough to push a fresh request past any sane deadline.
    ///
    /// [`ClockSkew`]: ResourceFaultKind::ClockSkew
    pub fn skew(&self) -> Duration {
        let mut rng = Rng::seed_from_u64(self.seed);
        Duration::from_secs(30 + rng.gen_range(0u64..90))
    }
}

/// A deterministic schedule of resource fault cases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceFaultPlan {
    pub seed: u64,
    pub cases: Vec<ResourceFaultCase>,
}

impl ResourceFaultPlan {
    /// Expand `seed` into `n` cases: the first [`ResourceFaultKind::ALL`]
    /// cases cover every kind once in a seed-shuffled order, the
    /// remainder are drawn uniformly — the same contract as
    /// [`FaultPlan::from_seed`](crate::plan::FaultPlan::from_seed).
    pub fn from_seed(seed: u64, n: usize) -> ResourceFaultPlan {
        let mut rng = Rng::seed_from_u64(seed);
        let mut kinds: Vec<ResourceFaultKind> = ResourceFaultKind::ALL.to_vec();
        rng.shuffle(&mut kinds);
        let mut cases = Vec::with_capacity(n);
        for i in 0..n {
            let kind = if i < kinds.len() {
                kinds[i]
            } else {
                kinds[rng.gen_range(0usize..kinds.len())]
            };
            cases.push(ResourceFaultCase {
                kind,
                seed: rng.next_u64(),
            });
        }
        ResourceFaultPlan { seed, cases }
    }
}

/// The filesystem misbehavior [`FaultyFs`] currently commits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsFault {
    /// Passthrough: behave exactly like the real filesystem.
    #[default]
    None,
    /// Writes persist a prefix then fail, and unlinks fail too (the
    /// worst ENOSPC: even cleanup can't run) — temp files strand.
    Enospc,
    /// Writes silently persist only a prefix and report success.
    TornWrite,
    /// Reads return the stored bytes with one deterministic bit
    /// flipped.
    BitRot,
    /// Renames fail.
    RenameFail,
}

/// A deterministic faulty [`CacheFs`]: every operation passes through
/// to [`RealFs`] except the ones the active [`FsFault`] mode corrupts.
/// Free choices (the torn-write cut point, the rotten bit) are drawn
/// from a seeded [`Rng`], so a given seed + operation sequence always
/// corrupts identically. Thread-safe; share via `Arc` and flip modes
/// mid-run with [`set`](FaultyFs::set).
#[derive(Debug)]
pub struct FaultyFs {
    inner: RealFs,
    state: Mutex<FaultyState>,
    /// Operations actually corrupted or failed so far.
    injected: AtomicU64,
}

#[derive(Debug)]
struct FaultyState {
    mode: FsFault,
    rng: Rng,
}

impl FaultyFs {
    pub fn new(seed: u64) -> Self {
        FaultyFs {
            inner: RealFs,
            state: Mutex::new(FaultyState {
                mode: FsFault::None,
                rng: Rng::seed_from_u64(seed),
            }),
            injected: AtomicU64::new(0),
        }
    }

    /// Switch the active fault mode (passthrough is [`FsFault::None`]).
    pub fn set(&self, mode: FsFault) {
        self.lock().mode = mode;
    }

    /// How many operations have been corrupted or failed so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultyState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn hit(&self) {
        self.injected.fetch_add(1, Ordering::Relaxed);
    }

    fn err(kind: &str) -> io::Error {
        io::Error::other(format!("injected fault: {kind}"))
    }
}

impl CacheFs for FaultyFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut data = self.inner.read(path)?;
        let mut st = self.lock();
        if st.mode == FsFault::BitRot && !data.is_empty() {
            let bit = st.rng.gen_range(0u64..(data.len() as u64 * 8));
            data[(bit / 8) as usize] ^= 1 << (bit % 8);
            drop(st);
            self.hit();
        }
        Ok(data)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut st = self.lock();
        match st.mode {
            FsFault::Enospc => {
                // The disk filled mid-write: a prefix lands, the call
                // errors, and the partial file stays behind.
                let keep = if data.is_empty() {
                    0
                } else {
                    st.rng.gen_range(0u64..data.len() as u64) as usize
                };
                drop(st);
                self.hit();
                let _ = self.inner.write(path, &data[..keep]);
                Err(Self::err("ENOSPC"))
            }
            FsFault::TornWrite => {
                // A torn write: a prefix persists, success is reported.
                let keep = if data.is_empty() {
                    0
                } else {
                    st.rng.gen_range(0u64..data.len() as u64) as usize
                };
                drop(st);
                self.hit();
                self.inner.write(path, &data[..keep])
            }
            _ => {
                drop(st);
                self.inner.write(path, data)
            }
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if self.lock().mode == FsFault::RenameFail {
            self.hit();
            return Err(Self::err("rename failed"));
        }
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        if self.lock().mode == FsFault::Enospc {
            // Even the cleanup unlink fails on the sick disk, so the
            // partial temp strands — exactly what the open-time sweep
            // exists for.
            self.hit();
            return Err(Self::err("unlink failed"));
        }
        self.inner.remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.list_dir(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_plans_replay_bit_identically() {
        let a = ResourceFaultPlan::from_seed(0xFEED, 24);
        let b = ResourceFaultPlan::from_seed(0xFEED, 24);
        assert_eq!(a, b);
        let c = ResourceFaultPlan::from_seed(0xFEEE, 24);
        assert_ne!(a.cases, c.cases);
    }

    #[test]
    fn every_resource_kind_is_covered_by_any_full_length_plan() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let plan = ResourceFaultPlan::from_seed(seed, ResourceFaultKind::ALL.len());
            for kind in ResourceFaultKind::ALL {
                assert!(
                    plan.cases.iter().any(|c| c.kind == kind),
                    "seed {seed} plan missing {}",
                    kind.label()
                );
            }
        }
    }

    #[test]
    fn faulty_fs_modes_corrupt_deterministically() {
        let dir = std::env::temp_dir().join(format!("hms-faultyfs-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let payload = vec![0xABu8; 64];

        // Torn write: success reported, prefix persisted.
        let fs = FaultyFs::new(7);
        fs.set(FsFault::TornWrite);
        let torn = dir.join("torn");
        fs.write(&torn, &payload).unwrap();
        let on_disk = std::fs::read(&torn).unwrap();
        assert!(on_disk.len() < payload.len(), "write was not torn");
        // Same seed, same cut point.
        let fs2 = FaultyFs::new(7);
        fs2.set(FsFault::TornWrite);
        let torn2 = dir.join("torn2");
        fs2.write(&torn2, &payload).unwrap();
        assert_eq!(on_disk, std::fs::read(&torn2).unwrap());

        // ENOSPC: error reported, partial file strands, unlink fails.
        fs.set(FsFault::Enospc);
        let full = dir.join("full");
        assert!(fs.write(&full, &payload).is_err());
        assert!(full.exists(), "ENOSPC strands its partial file");
        assert!(fs.remove_file(&full).is_err());

        // Bit rot: read differs from what was stored in exactly the
        // bytes around one flipped bit.
        fs.set(FsFault::None);
        let rot = dir.join("rot");
        fs.write(&rot, &payload).unwrap();
        fs.set(FsFault::BitRot);
        let read = fs.read(&rot).unwrap();
        assert_ne!(read, payload, "bit rot must corrupt the read");
        assert_eq!(read.len(), payload.len());

        // Rename fail.
        fs.set(FsFault::RenameFail);
        assert!(fs.rename(&rot, &dir.join("moved")).is_err());
        assert!(fs.injected() >= 4);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
