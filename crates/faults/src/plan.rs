//! Seed-replayable fault schedules.
//!
//! A [`FaultPlan`] expands one 64-bit seed into a deterministic sequence
//! of [`FaultCase`]s. The expansion has two guarantees the chaos suite
//! leans on: the same seed always yields the same schedule (replay), and
//! every [`FaultKind`] appears at least once in any plan of length ≥
//! [`FaultKind::ALL`]`.len()` (coverage — a seed cannot dodge a fault
//! class).

use hms_stats::rng::Rng;

/// One injectable fault class. Each maps to a concrete misbehavior the
/// [`FaultClient`](crate::client::FaultClient) commits on the wire, and
/// to a guaranteed server response documented in DESIGN.md §11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Drip the request onto the socket a few bytes at a time, slower
    /// than any sane client: the classic slowloris worker-starvation
    /// attack. Guarantee: the cumulative request-read deadline fires
    /// (408 or connection close); the worker is freed.
    SlowlorisTrickle,
    /// Declare `content-length: N` and send fewer than `N` body bytes,
    /// then half-close. Guarantee: 400 (malformed request), keep-alive
    /// ended, no hang.
    TruncateBody,
    /// Vanish mid-request: drop the connection after the headers with
    /// the body outstanding, reading nothing. Guarantee: the server
    /// treats it as that one connection's I/O error — no response owed,
    /// no worker leaked, process alive.
    ResetMidRequest,
    /// Declare a `content-length` beyond the server's body cap.
    /// Guarantee: 413, connection closed before the body is read.
    OversizedBody,
    /// A syntactically hostile JSON body from the generated corpus
    /// (truncated UTF-8, deep nesting, huge numbers, duplicate keys,
    /// NUL bytes). Guarantee: 400 with an error body, keep-alive
    /// intact.
    MalformedJson,
}

impl FaultKind {
    /// Every fault class, in schedule order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::SlowlorisTrickle,
        FaultKind::TruncateBody,
        FaultKind::ResetMidRequest,
        FaultKind::OversizedBody,
        FaultKind::MalformedJson,
    ];

    /// Stable label for failure messages and metrics.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::SlowlorisTrickle => "slowloris_trickle",
            FaultKind::TruncateBody => "truncate_body",
            FaultKind::ResetMidRequest => "reset_mid_request",
            FaultKind::OversizedBody => "oversized_body",
            FaultKind::MalformedJson => "malformed_json",
        }
    }
}

/// One scheduled fault: the class plus a per-case seed that fixes every
/// free choice inside it (trickle chunk sizes, truncation point, which
/// corpus document).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultCase {
    pub kind: FaultKind,
    pub seed: u64,
}

impl FaultCase {
    /// The one-line replay recipe printed when a case fails its
    /// guarantee.
    pub fn replay_line(&self, plan_seed: u64) -> String {
        format!(
            "replay: HMS_CHAOS_SEED={plan_seed} (case {} seed {:#x})",
            self.kind.label(),
            self.seed
        )
    }
}

/// A deterministic schedule of fault cases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    pub seed: u64,
    pub cases: Vec<FaultCase>,
}

impl FaultPlan {
    /// Expand `seed` into `n` cases. The first [`FaultKind::ALL`] cases
    /// cover every kind once in a seed-shuffled order; the remainder are
    /// drawn uniformly, so longer plans stress-repeat classes while
    /// short plans still cover the matrix.
    pub fn from_seed(seed: u64, n: usize) -> FaultPlan {
        let mut rng = Rng::seed_from_u64(seed);
        let mut kinds: Vec<FaultKind> = FaultKind::ALL.to_vec();
        rng.shuffle(&mut kinds);
        let mut cases = Vec::with_capacity(n);
        for i in 0..n {
            let kind = if i < kinds.len() {
                kinds[i]
            } else {
                kinds[rng.gen_range(0usize..kinds.len())]
            };
            cases.push(FaultCase {
                kind,
                seed: rng.next_u64(),
            });
        }
        FaultPlan { seed, cases }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_replay_bit_identically() {
        let a = FaultPlan::from_seed(0xC0FFEE, 32);
        let b = FaultPlan::from_seed(0xC0FFEE, 32);
        assert_eq!(a, b);
        let c = FaultPlan::from_seed(0xC0FFEF, 32);
        assert_ne!(a.cases, c.cases);
    }

    #[test]
    fn every_kind_is_covered_by_any_full_length_plan() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let plan = FaultPlan::from_seed(seed, FaultKind::ALL.len());
            for kind in FaultKind::ALL {
                assert!(
                    plan.cases.iter().any(|c| c.kind == kind),
                    "seed {seed} plan missing {}",
                    kind.label()
                );
            }
        }
    }

    #[test]
    fn replay_line_names_seed_and_case() {
        let plan = FaultPlan::from_seed(7, 1);
        let line = plan.cases[0].replay_line(plan.seed);
        assert!(line.contains("HMS_CHAOS_SEED=7"), "{line}");
        assert!(line.contains(plan.cases[0].kind.label()), "{line}");
    }
}
