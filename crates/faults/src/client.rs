//! A TCP client that commits fault scenarios against a live server.
//!
//! Each [`FaultKind`](crate::plan::FaultKind) maps to one concrete
//! misbehavior on a real socket. The client then *classifies* what it
//! observed into a [`FaultOutcome`] and checks it against the kind's
//! documented guarantee. Crucially the client itself never panics on
//! I/O: a server that closes, resets, or refuses is an outcome to
//! classify, not a test-harness crash.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

use hms_stats::rng::Rng;

use crate::plan::{FaultCase, FaultKind};

/// What the server observably did in response to a committed fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// A complete HTTP response with this status code.
    Status(u16),
    /// The connection was closed (EOF / reset) without a response —
    /// legitimate for faults where no response is owed.
    ConnectionClosed,
    /// The client abandoned the connection mid-fault by design
    /// (e.g. [`FaultKind::ResetMidRequest`]); nothing was read.
    Dropped,
    /// The server neither answered nor hung up within the client's
    /// read timeout. This is the hung-worker signature and satisfies
    /// no guarantee.
    TimedOut,
}

impl FaultOutcome {
    /// Does this outcome satisfy `kind`'s documented guarantee?
    /// (Process-level guarantees — no panic, no leaked worker — are
    /// checked by the caller probing `/healthz` afterwards.)
    pub fn satisfies(self, kind: FaultKind) -> bool {
        match kind {
            // The request-read deadline must end the trickle: either a
            // 408 made it out or the server just hung up.
            FaultKind::SlowlorisTrickle => {
                matches!(
                    self,
                    FaultOutcome::Status(408) | FaultOutcome::ConnectionClosed
                )
            }
            // A truncated body is a malformed request: 400, or a close
            // if the response raced our half-close.
            FaultKind::TruncateBody => matches!(
                self,
                FaultOutcome::Status(400 | 408) | FaultOutcome::ConnectionClosed
            ),
            FaultKind::ResetMidRequest => matches!(self, FaultOutcome::Dropped),
            FaultKind::OversizedBody => matches!(self, FaultOutcome::Status(413)),
            // Hostile JSON is a client error; semantically-wrong-shape
            // corpus documents may also legitimately earn a 404
            // (unknown kernel).
            FaultKind::MalformedJson => {
                matches!(self, FaultOutcome::Status(s) if (400..500).contains(&s))
            }
        }
    }
}

/// Fault-committing client. One instance per target server.
#[derive(Debug, Clone)]
pub struct FaultClient {
    addr: SocketAddr,
    /// How long to wait for a response before declaring
    /// [`FaultOutcome::TimedOut`]. Must comfortably exceed the server's
    /// request-read deadline.
    pub read_timeout: Duration,
    /// Delay between slowloris trickle chunks. Pick it so the server's
    /// read deadline fires a few chunks in.
    pub trickle_delay: Duration,
}

impl FaultClient {
    pub fn new(addr: SocketAddr) -> FaultClient {
        FaultClient {
            addr,
            read_timeout: Duration::from_secs(10),
            trickle_delay: Duration::from_millis(50),
        }
    }

    /// Commit one fault case against `path` (the well-formed request
    /// body the fault corrupts is `good_body`) and classify the result.
    pub fn commit(&self, case: FaultCase, path: &str, good_body: &[u8]) -> FaultOutcome {
        let mut rng = Rng::seed_from_u64(case.seed);
        let Ok(stream) = TcpStream::connect(self.addr) else {
            return FaultOutcome::ConnectionClosed;
        };
        let _ = stream.set_read_timeout(Some(self.read_timeout));
        let _ = stream.set_nodelay(true);
        match case.kind {
            FaultKind::SlowlorisTrickle => self.slowloris(stream, &mut rng, path, good_body),
            FaultKind::TruncateBody => self.truncate_body(stream, &mut rng, path, good_body),
            FaultKind::ResetMidRequest => {
                // Send the headers promising a body, then vanish. The
                // explicit shutdown makes the disappearance immediate
                // rather than waiting on the OS to flush on drop.
                let mut s = stream;
                let _ = write!(
                    s,
                    "POST {path} HTTP/1.1\r\nhost: f\r\ncontent-length: {}\r\n\r\n",
                    good_body.len().max(1)
                );
                let _ = s.flush();
                let _ = s.shutdown(Shutdown::Both);
                FaultOutcome::Dropped
            }
            FaultKind::OversizedBody => {
                let mut s = stream;
                // Promise far more than any sane cap; send nothing. A
                // correct server rejects on the declared length alone.
                let declared = 2 * 1024 * 1024 + rng.gen_range(0u64..4096);
                let _ = write!(
                    s,
                    "POST {path} HTTP/1.1\r\nhost: f\r\ncontent-length: {declared}\r\n\r\n"
                );
                let _ = s.flush();
                read_outcome(s)
            }
            FaultKind::MalformedJson => {
                let mut s = stream;
                let corpus = crate::corpus::adversarial_json(case.seed, 8);
                let body = &corpus[rng.gen_range(0usize..corpus.len())];
                let _ = write!(
                    s,
                    "POST {path} HTTP/1.1\r\nhost: f\r\ncontent-length: {}\r\n\r\n",
                    body.len()
                );
                let _ = s.write_all(body);
                let _ = s.flush();
                read_outcome(s)
            }
        }
    }

    /// Drip the request a few bytes at a time until the server gives up
    /// (or, pathologically, until the whole request has dripped).
    fn slowloris(
        &self,
        mut stream: TcpStream,
        rng: &mut Rng,
        path: &str,
        good_body: &[u8],
    ) -> FaultOutcome {
        let mut request = format!(
            "POST {path} HTTP/1.1\r\nhost: f\r\ncontent-length: {}\r\n\r\n",
            good_body.len()
        )
        .into_bytes();
        request.extend_from_slice(good_body);
        let mut sent = 0;
        while sent < request.len() {
            let chunk = rng.gen_range(1usize..4).min(request.len() - sent);
            if stream.write_all(&request[sent..sent + chunk]).is_err() {
                // Server already gave up on us mid-trickle; see what it
                // said (a 408 may be buffered) or confirm the close.
                break;
            }
            let _ = stream.flush();
            sent += chunk;
            std::thread::sleep(self.trickle_delay);
        }
        read_outcome(stream)
    }

    /// Declare the full body length, send a strict prefix, half-close.
    fn truncate_body(
        &self,
        mut stream: TcpStream,
        rng: &mut Rng,
        path: &str,
        good_body: &[u8],
    ) -> FaultOutcome {
        let keep = rng.gen_range(0usize..good_body.len().max(1));
        let _ = write!(
            stream,
            "POST {path} HTTP/1.1\r\nhost: f\r\ncontent-length: {}\r\n\r\n",
            good_body.len().max(1)
        );
        let _ = stream.write_all(&good_body[..keep.min(good_body.len())]);
        let _ = stream.flush();
        // Half-close: the server sees EOF where body bytes were owed,
        // while our read side stays open for its 400.
        let _ = stream.shutdown(Shutdown::Write);
        read_outcome(stream)
    }
}

/// Read and classify whatever the server sends next on `stream`.
fn read_outcome(stream: TcpStream) -> FaultOutcome {
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    match reader.read_line(&mut status_line) {
        Ok(0) => return FaultOutcome::ConnectionClosed,
        Ok(_) => {}
        Err(e) => {
            return match e.kind() {
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                    FaultOutcome::TimedOut
                }
                _ => FaultOutcome::ConnectionClosed,
            }
        }
    }
    let Some(status) = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
    else {
        return FaultOutcome::ConnectionClosed;
    };
    // Drain headers and any content-length body so keep-alive state is
    // observable by the caller if it reuses the address.
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {
                let line = line.trim_end();
                if line.is_empty() {
                    break;
                }
                if let Some(v) = line
                    .to_ascii_lowercase()
                    .strip_prefix("content-length:")
                    .map(str::trim)
                {
                    content_length = v.parse().unwrap_or(0);
                }
            }
        }
    }
    let mut body = vec![0u8; content_length.min(1 << 20)];
    let _ = reader.read_exact(&mut body);
    FaultOutcome::Status(status)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guarantees_match_the_documented_matrix() {
        use FaultKind::*;
        use FaultOutcome::*;
        assert!(Status(408).satisfies(SlowlorisTrickle));
        assert!(ConnectionClosed.satisfies(SlowlorisTrickle));
        assert!(!TimedOut.satisfies(SlowlorisTrickle));
        assert!(Status(400).satisfies(TruncateBody));
        assert!(!Status(200).satisfies(TruncateBody));
        assert!(Dropped.satisfies(ResetMidRequest));
        assert!(Status(413).satisfies(OversizedBody));
        assert!(!Status(400).satisfies(OversizedBody));
        assert!(Status(404).satisfies(MalformedJson));
        assert!(!Status(500).satisfies(MalformedJson));
        assert!(!TimedOut.satisfies(MalformedJson));
    }

    #[test]
    fn client_classifies_a_dead_server_as_closed() {
        // Bind-then-drop guarantees a port with no listener.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let client = FaultClient::new(addr);
        let case = FaultCase {
            kind: FaultKind::MalformedJson,
            seed: 1,
        };
        assert_eq!(
            client.commit(case, "/v1/predict", b"{}"),
            FaultOutcome::ConnectionClosed
        );
    }
}
