//! Retry with jittered exponential backoff.
//!
//! The benchmark client (and any batch caller) retries transient
//! transport failures instead of dying on the first reset. Jitter is
//! drawn from the workspace's deterministic [`Rng`], so a seeded run
//! retries on the same schedule every time — backoff is part of the
//! reproducible experiment, not a source of noise.

use std::time::Duration;

use hms_stats::rng::Rng;

/// Backoff schedule: `base * 2^attempt`, capped, each delay scaled by a
/// uniform jitter in `[0.5, 1.0)` (the "equal jitter" scheme — never
/// more than the exponential envelope, never a thundering herd of
/// identical delays).
#[derive(Debug, Clone, Copy)]
pub struct BackoffPolicy {
    pub attempts: u32,
    pub base: Duration,
    pub cap: Duration,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            attempts: 4,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
        }
    }
}

impl BackoffPolicy {
    /// The jittered delay before retry number `attempt` (0-based).
    pub fn delay(&self, attempt: u32, rng: &mut Rng) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.cap);
        exp.mul_f64(0.5 + rng.gen_f64() * 0.5)
    }
}

/// Run `op` up to `policy.attempts` times, sleeping a jittered
/// exponential delay between failures. Returns the first success, or
/// the last error once attempts are exhausted.
pub fn retry_with_backoff<T, E>(
    policy: &BackoffPolicy,
    rng: &mut Rng,
    mut op: impl FnMut() -> Result<T, E>,
) -> Result<T, E> {
    let mut last = None;
    for attempt in 0..policy.attempts.max(1) {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => {
                last = Some(e);
                if attempt + 1 < policy.attempts.max(1) {
                    std::thread::sleep(policy.delay(attempt, rng));
                }
            }
        }
    }
    Err(last.expect("at least one attempt ran"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succeeds_without_retry_when_op_succeeds() {
        let mut rng = Rng::seed_from_u64(1);
        let mut calls = 0;
        let r: Result<u32, ()> = retry_with_backoff(&BackoffPolicy::default(), &mut rng, || {
            calls += 1;
            Ok(7)
        });
        assert_eq!(r, Ok(7));
        assert_eq!(calls, 1);
    }

    #[test]
    fn retries_then_returns_last_error() {
        let policy = BackoffPolicy {
            attempts: 3,
            base: Duration::from_micros(10),
            cap: Duration::from_micros(50),
        };
        let mut rng = Rng::seed_from_u64(2);
        let mut calls = 0;
        let r: Result<(), u32> = retry_with_backoff(&policy, &mut rng, || {
            calls += 1;
            Err(calls)
        });
        assert_eq!(r, Err(3));
        assert_eq!(calls, 3);
    }

    #[test]
    fn recovers_after_transient_failures() {
        let policy = BackoffPolicy {
            attempts: 5,
            base: Duration::from_micros(10),
            cap: Duration::from_micros(50),
        };
        let mut rng = Rng::seed_from_u64(3);
        let mut calls = 0;
        let r: Result<&str, &str> = retry_with_backoff(&policy, &mut rng, || {
            calls += 1;
            if calls < 3 {
                Err("transient")
            } else {
                Ok("up")
            }
        });
        assert_eq!(r, Ok("up"));
        assert_eq!(calls, 3);
    }

    #[test]
    fn delays_are_deterministic_and_bounded() {
        let policy = BackoffPolicy::default();
        let mut a = Rng::seed_from_u64(9);
        let mut b = Rng::seed_from_u64(9);
        for attempt in 0..6 {
            let da = policy.delay(attempt, &mut a);
            let db = policy.delay(attempt, &mut b);
            assert_eq!(da, db, "same seed, same schedule");
            assert!(da <= policy.cap);
            assert!(da >= policy.base / 2);
        }
    }
}
