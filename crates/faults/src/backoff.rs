//! Retry with jittered exponential backoff.
//!
//! The benchmark client (and any batch caller) retries transient
//! transport failures instead of dying on the first reset. Jitter is
//! drawn from the workspace's deterministic [`Rng`], so a seeded run
//! retries on the same schedule every time — backoff is part of the
//! reproducible experiment, not a source of noise.
//!
//! Attempts are bounded twice: by count (`attempts`) and, when set, by
//! a total elapsed-time `budget`. The budget is the caller's request
//! deadline made explicit — a retry loop inside a 10 s request must
//! never sleep its way past the 10th second and then burn a doomed
//! attempt against a server that already answered 504.

use std::time::{Duration, Instant};

use hms_stats::rng::Rng;

/// Backoff schedule: `base * 2^attempt`, capped, each delay scaled by a
/// uniform jitter in `[0.5, 1.0)` (the "equal jitter" scheme — never
/// more than the exponential envelope, never a thundering herd of
/// identical delays).
#[derive(Debug, Clone, Copy)]
pub struct BackoffPolicy {
    pub attempts: u32,
    pub base: Duration,
    pub cap: Duration,
    /// Total elapsed-time budget across all attempts and sleeps.
    /// `None` preserves the attempt-count-only behavior. With a
    /// budget, the loop never *starts* a sleep that the remaining
    /// budget cannot cover, and never starts a retry attempt once the
    /// budget is spent — so retries cannot outlive the caller's
    /// deadline by more than one in-flight operation.
    pub budget: Option<Duration>,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            attempts: 4,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            budget: None,
        }
    }
}

impl BackoffPolicy {
    /// The jittered delay before retry number `attempt` (0-based).
    pub fn delay(&self, attempt: u32, rng: &mut Rng) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.cap);
        exp.mul_f64(0.5 + rng.gen_f64() * 0.5)
    }

    /// Same policy with a total elapsed-time budget.
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.budget = Some(budget);
        self
    }
}

/// Run `op` up to `policy.attempts` times, sleeping a jittered
/// exponential delay between failures. Returns the first success, or
/// the last error once attempts (or the elapsed-time budget) are
/// exhausted. The first attempt always runs, even with a zero budget —
/// callers expect at least one try.
pub fn retry_with_backoff<T, E>(
    policy: &BackoffPolicy,
    rng: &mut Rng,
    mut op: impl FnMut() -> Result<T, E>,
) -> Result<T, E> {
    let start = Instant::now();
    let attempts = policy.attempts.max(1);
    let mut last = None;
    for attempt in 0..attempts {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => {
                last = Some(e);
                if attempt + 1 >= attempts {
                    break;
                }
                let delay = policy.delay(attempt, rng);
                if let Some(budget) = policy.budget {
                    // Sleeping past the budget is never useful: the
                    // retry after it would land beyond the caller's
                    // deadline. Return the last real error instead.
                    if start.elapsed() + delay >= budget {
                        break;
                    }
                }
                std::thread::sleep(delay);
            }
        }
    }
    Err(last.expect("at least one attempt ran"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succeeds_without_retry_when_op_succeeds() {
        let mut rng = Rng::seed_from_u64(1);
        let mut calls = 0;
        let r: Result<u32, ()> = retry_with_backoff(&BackoffPolicy::default(), &mut rng, || {
            calls += 1;
            Ok(7)
        });
        assert_eq!(r, Ok(7));
        assert_eq!(calls, 1);
    }

    #[test]
    fn retries_then_returns_last_error() {
        let policy = BackoffPolicy {
            attempts: 3,
            base: Duration::from_micros(10),
            cap: Duration::from_micros(50),
            budget: None,
        };
        let mut rng = Rng::seed_from_u64(2);
        let mut calls = 0;
        let r: Result<(), u32> = retry_with_backoff(&policy, &mut rng, || {
            calls += 1;
            Err(calls)
        });
        assert_eq!(r, Err(3));
        assert_eq!(calls, 3);
    }

    #[test]
    fn recovers_after_transient_failures() {
        let policy = BackoffPolicy {
            attempts: 5,
            base: Duration::from_micros(10),
            cap: Duration::from_micros(50),
            budget: None,
        };
        let mut rng = Rng::seed_from_u64(3);
        let mut calls = 0;
        let r: Result<&str, &str> = retry_with_backoff(&policy, &mut rng, || {
            calls += 1;
            if calls < 3 {
                Err("transient")
            } else {
                Ok("up")
            }
        });
        assert_eq!(r, Ok("up"));
        assert_eq!(calls, 3);
    }

    #[test]
    fn delays_are_deterministic_and_bounded() {
        let policy = BackoffPolicy::default();
        let mut a = Rng::seed_from_u64(9);
        let mut b = Rng::seed_from_u64(9);
        for attempt in 0..6 {
            let da = policy.delay(attempt, &mut a);
            let db = policy.delay(attempt, &mut b);
            assert_eq!(da, db, "same seed, same schedule");
            assert!(da <= policy.cap);
            assert!(da >= policy.base / 2);
        }
    }

    #[test]
    fn zero_budget_still_runs_exactly_one_attempt() {
        let policy = BackoffPolicy::default().with_budget(Duration::ZERO);
        let mut rng = Rng::seed_from_u64(4);
        let mut calls = 0;
        let r: Result<(), u32> = retry_with_backoff(&policy, &mut rng, || {
            calls += 1;
            Err(calls)
        });
        assert_eq!(r, Err(1));
        assert_eq!(calls, 1, "budget never suppresses the first attempt");
    }

    #[test]
    fn budget_stops_retries_that_cannot_finish_in_time() {
        // Delays start at >= base/2 = 50 ms; a 1 ms budget cannot cover
        // even the first sleep, so the loop stops after attempt one
        // despite `attempts: 100`.
        let policy = BackoffPolicy {
            attempts: 100,
            base: Duration::from_millis(100),
            cap: Duration::from_millis(100),
            budget: Some(Duration::from_millis(1)),
        };
        let mut rng = Rng::seed_from_u64(5);
        let start = Instant::now();
        let mut calls = 0;
        let r: Result<(), u32> = retry_with_backoff(&policy, &mut rng, || {
            calls += 1;
            Err(calls)
        });
        assert_eq!(r, Err(1));
        assert_eq!(calls, 1);
        assert!(
            start.elapsed() < Duration::from_millis(100),
            "loop slept past its budget"
        );
    }

    #[test]
    fn generous_budget_changes_nothing() {
        let policy = BackoffPolicy {
            attempts: 3,
            base: Duration::from_micros(10),
            cap: Duration::from_micros(50),
            budget: Some(Duration::from_secs(60)),
        };
        let mut rng = Rng::seed_from_u64(6);
        let mut calls = 0;
        let r: Result<(), u32> = retry_with_backoff(&policy, &mut rng, || {
            calls += 1;
            Err(calls)
        });
        assert_eq!(r, Err(3));
        assert_eq!(calls, 3, "a slack budget must not cut attempts");
    }
}
