//! SHOC `md5hash` (`FindKeyWithDigest_Kernel`): brute-force keyspace
//! search. Almost pure integer compute — dozens of rounds of shifts,
//! adds, and rotates per candidate key — with a single, rarely-taken
//! store of the found key. Table IV tests `foundKey(G->S)`: a tiny,
//! almost-never-written result buffer.

use hms_trace::{KernelTrace, SymOp, WarpTrace};
use hms_types::{ArrayDef, DType, Geometry};

use crate::common::{addr, store_masked, tid_preamble, warp_tids, WARP};
use crate::Scale;

pub fn build(scale: Scale) -> KernelTrace {
    let (blocks, threads, rounds) = match scale {
        Scale::Test => (4u32, 64u32, 8u16),
        Scale::Full => (48u32, 128u32, 64u16),
    };
    let geometry = Geometry::new(blocks, threads);
    let arrays = vec![
        ArrayDef::new_1d(0, "foundKey", DType::U32, 8, true),
        ArrayDef::new_1d(1, "foundIndex", DType::U32, 1, true),
    ];
    // The "winning" thread: one lane in the whole grid writes its key.
    let winner = u64::from(blocks) * u64::from(threads) * 3 / 4 + 5;
    let mut warps = Vec::new();
    for block in 0..blocks {
        for warp in 0..geometry.warps_per_block() {
            let tids: Vec<u64> = warp_tids(block, warp, threads).collect();
            let mut ops = vec![tid_preamble()];
            // The working state (a,b,c,d + 16 message words) exceeds the
            // register budget: the compiler spills part of it to local
            // memory. Model one spill store up front and a reload every
            // 16 rounds — the traffic behind the paper's replay causes
            // (7) and (9).
            ops.push(SymOp::Local {
                is_store: true,
                slots: vec![0; 32],
            });
            // MD5 rounds: 4 ops per round per the FF/GG/HH/II macros
            // (add, rotate, add, xor-mix), purely integer.
            for r in 0..rounds {
                ops.push(SymOp::IntAlu(4));
                if r % 16 == 15 {
                    ops.push(SymOp::Local {
                        is_store: false,
                        slots: vec![r as u32 / 16; 32],
                    });
                    ops.push(SymOp::WaitLoads);
                }
            }
            ops.push(SymOp::IntAlu(2)); // digest comparison
            if tids.contains(&winner) {
                // The winning warp writes 8 key words + the index, from
                // one lane.
                let lane = tids.iter().position(|&t| t == winner).unwrap();
                for word in 0..8u64 {
                    let idx: Vec<Option<u64>> = (0..WARP as usize)
                        .map(|l| (l == lane).then_some(word))
                        .collect();
                    ops.push(addr(0));
                    ops.push(store_masked(0, idx));
                }
                let idx: Vec<Option<u64>> = (0..WARP as usize)
                    .map(|l| (l == lane).then_some(0))
                    .collect();
                ops.push(addr(1));
                ops.push(store_masked(1, idx));
            }
            warps.push(WarpTrace { block, warp, ops });
        }
    }
    KernelTrace {
        name: "FindKeyWithDigest".into(),
        arrays,
        geometry,
        warps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_one_warp_stores() {
        let kt = build(Scale::Test);
        let storing = kt
            .warps
            .iter()
            .filter(|w| {
                w.ops
                    .iter()
                    .any(|o| matches!(o, SymOp::Access(m) if m.is_store))
            })
            .count();
        assert_eq!(storing, 1);
    }

    #[test]
    fn spills_local_memory() {
        let kt = build(Scale::Full);
        let spill_stores = kt.warps[0]
            .ops
            .iter()
            .filter(|o| matches!(o, SymOp::Local { is_store: true, .. }))
            .count();
        let reloads = kt.warps[0]
            .ops
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    SymOp::Local {
                        is_store: false,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(spill_stores, 1);
        assert!(reloads >= 2);
    }

    #[test]
    fn compute_dominates() {
        let kt = build(Scale::Test);
        let ints: u64 = kt.warps[0]
            .ops
            .iter()
            .map(|o| match o {
                SymOp::IntAlu(n) => u64::from(*n),
                _ => 0,
            })
            .sum();
        assert!(ints > 30);
    }
}
