//! Parameterized wide multi-array kernels — the combinatorial search
//! regime.
//!
//! Every Table IV workload has 2–4 placement-relevant arrays, so
//! exhaustive search stays cheap (≤ a few hundred candidates). Real
//! kernels carry 6–10 arrays, where the `m^n` placement space explodes
//! into the hundreds of thousands — the regime the anytime strategies
//! in `hms-core::strategies` exist for. [`build_n`] generates such a
//! kernel on demand: `n − 1` read-only inputs with a rotating mix of
//! access patterns (coalesced 1-D streams, 2-D tiles that make
//! `Texture2D` legal, small broadcast-read coefficient tables that
//! favour `Constant`, seeded 2-D gathers) feeding one written output.
//!
//! The generators are *not* in [`registry`](crate::registry) — the
//! registry is the paper's fixed Table IV set, pinned by workload
//! checksums and exercised exhaustively by the equivalence suite,
//! which would not terminate on a 6-figure placement space. Instead
//! [`by_name`](crate::by_name) accepts the spellings `wide3` …
//! `wide12`, so the CLI, the server, and the benches can all name
//! them.
//!
//! Gather indices come from the repo's seeded [`hms_stats::rng`]
//! stream: a `wideN` trace is bit-identical on every machine.

use hms_stats::rng::Rng;
use hms_trace::{KernelTrace, SymOp, WarpTrace};
use hms_types::{ArrayDef, DType, Geometry};

use crate::common::{addr, load, load_uniform, load_xy, store, tid_preamble, warp_tids, WARP};
use crate::Scale;

/// Smallest accepted `wideN` arity (below this the Table IV kernels
/// already cover the space).
pub const MIN_ARRAYS: usize = 3;
/// Largest accepted `wideN` arity.
pub const MAX_ARRAYS: usize = 12;

/// Elements in each broadcast-read coefficient table.
const TABLE_ELEMS: u64 = 64;

/// Build a `num_arrays`-array kernel: `num_arrays − 1` read-only
/// inputs (patterns rotating stream / tile / table / gather) and one
/// written 1-D output. Panics outside [`MIN_ARRAYS`]`..=`[`MAX_ARRAYS`].
pub fn build_n(num_arrays: usize, scale: Scale) -> KernelTrace {
    assert!(
        (MIN_ARRAYS..=MAX_ARRAYS).contains(&num_arrays),
        "wideN supports {MIN_ARRAYS}..={MAX_ARRAYS} arrays, got {num_arrays}"
    );
    let (blocks, threads) = match scale {
        Scale::Test => (2u32, 64u32),
        Scale::Full => (16u32, 128u32),
    };
    let n = u64::from(blocks) * u64::from(threads);
    let geometry = Geometry::new(blocks, threads);
    // 2-D shapes: one warp-wide row per y step.
    let (w2d, h2d) = (WARP, n / WARP);
    let inputs = num_arrays - 1;
    let mut arrays = Vec::with_capacity(num_arrays);
    for i in 0..inputs {
        let id = i as u32;
        let name = format!("in{i}");
        arrays.push(match i % 4 {
            0 => ArrayDef::new_1d(id, &name, DType::F32, n, false),
            1 | 3 => ArrayDef::new_2d(id, &name, DType::F32, w2d, h2d, false),
            _ => ArrayDef::new_1d(id, &name, DType::F32, TABLE_ELEMS, false),
        });
    }
    arrays.push(ArrayDef::new_1d(inputs as u32, "out", DType::F32, n, true));

    let mut warps = Vec::new();
    for block in 0..blocks {
        for warp in 0..geometry.warps_per_block() {
            let tids: Vec<u64> = warp_tids(block, warp, threads).collect();
            let global_warp =
                u64::from(block) * u64::from(geometry.warps_per_block()) + u64::from(warp);
            let mut ops = vec![tid_preamble(), SymOp::IntAlu(1)];
            for i in 0..inputs {
                let id = i as u32;
                ops.push(addr(id));
                ops.push(match i % 4 {
                    // Coalesced 1-D stream: lane ↦ its own element.
                    0 => load(id, tids.iter().copied()),
                    // 2-D row tile: the warp reads one contiguous row.
                    1 => load_xy(id, tids.iter().map(|&t| (t % w2d, (t / w2d) % h2d))),
                    // Broadcast coefficient: all lanes read one word,
                    // rotating per (warp, array) so the table is covered.
                    2 => load_uniform(id, (global_warp * 7 + i as u64) % TABLE_ELEMS),
                    // Seeded 2-D gather: irregular per-lane coordinates,
                    // a pure function of (arity, array, warp).
                    _ => {
                        let seed = 0x1DE0_0000_0000
                            ^ ((num_arrays as u64) << 24)
                            ^ ((i as u64) << 16)
                            ^ global_warp;
                        let mut rng = Rng::seed_from_u64(seed);
                        load_xy(
                            id,
                            (0..WARP)
                                .map(|_| (rng.gen_range(0..w2d), rng.gen_range(0..h2d)))
                                .collect::<Vec<_>>(),
                        )
                    }
                });
            }
            ops.push(SymOp::WaitLoads);
            ops.push(SymOp::FpAlu(inputs as u16));
            ops.push(addr(inputs as u32));
            ops.push(store(inputs as u32, tids.iter().copied()));
            warps.push(WarpTrace { block, warp, ops });
        }
    }
    KernelTrace {
        name: format!("wide{num_arrays}"),
        arrays,
        geometry,
        warps,
    }
}

/// Parse a `wideN` kernel name (`wide3` … `wide12`). Returns `None`
/// for anything else, including out-of-range arities.
pub fn parse_name(name: &str) -> Option<usize> {
    let n: usize = name.strip_prefix("wide")?.parse().ok()?;
    (MIN_ARRAYS..=MAX_ARRAYS).contains(&n).then_some(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hms_types::{Dims, GpuConfig, MemorySpace, PlacementMap};

    #[test]
    fn builds_are_deterministic() {
        for n in [MIN_ARRAYS, 8, MAX_ARRAYS] {
            let a = build_n(n, Scale::Test);
            let b = build_n(n, Scale::Test);
            assert_eq!(a.arrays.len(), n);
            assert_eq!(format!("{:?}", a.warps), format!("{:?}", b.warps));
        }
    }

    #[test]
    fn shape_mixes_dimensionalities() {
        let kt = build_n(8, Scale::Test);
        let two_d = kt
            .arrays
            .iter()
            .filter(|a| matches!(a.dims, Dims::D2 { .. }))
            .count();
        assert!(two_d >= 2, "wide8 should carry 2-D arrays, got {two_d}");
        assert_eq!(kt.arrays.iter().filter(|a| a.written).count(), 1);
        assert!(kt.arrays.last().unwrap().written);
    }

    #[test]
    fn wide_kernels_simulate_and_search_space_is_combinatorial() {
        let cfg = GpuConfig::test_small();
        let kt = build_n(8, Scale::Test);
        let base = kt.default_placement();
        assert!(base.validate(&kt.arrays, &cfg).is_ok());
        let ct = hms_trace::materialize(&kt, &base, &cfg).unwrap();
        let sim = hms_sim::simulate_default(&ct, &cfg).unwrap();
        assert!(sim.cycles > 0);
        // Per-array standalone legality: the product over read-only
        // arrays must be deep into anytime territory.
        let mut product: u64 = 1;
        for arr in kt.arrays.iter().filter(|a| !a.written) {
            let legal = MemorySpace::ALL
                .iter()
                .filter(|&&s| {
                    PlacementMap::all_global(kt.arrays.len())
                        .with(arr.id, s)
                        .validate(&kt.arrays, &cfg)
                        .is_ok()
                })
                .count() as u64;
            product *= legal;
        }
        assert!(
            product >= 10_000,
            "wide8 read-only space only {product} candidates"
        );
    }

    #[test]
    fn name_parsing_is_strict() {
        assert_eq!(parse_name("wide8"), Some(8));
        assert_eq!(parse_name("wide3"), Some(3));
        assert_eq!(parse_name("wide12"), Some(12));
        assert_eq!(parse_name("wide2"), None);
        assert_eq!(parse_name("wide13"), None);
        assert_eq!(parse_name("wide"), None);
        assert_eq!(parse_name("widex"), None);
        assert_eq!(parse_name("vecadd"), None);
    }
}
