//! CUDA SDK `transposeNaive`: coalesced reads of `idata`, strided
//! (divergent) writes of `odata`. Table IV tests `odata(G->2T)` — illegal
//! for a written array, so the harness instead exercises the paper's
//! other transpose tests, `idata(G->T)` and `idata(G->2T)`; the 2-D
//! texture layout turns the row-major read + column write combination
//! into a placement question.

use hms_trace::{KernelTrace, SymOp, WarpTrace};
use hms_types::{ArrayDef, DType, Geometry};

use crate::common::{addr, load_xy, store_xy, tid_preamble, WARP};
use crate::Scale;

pub fn build(scale: Scale) -> KernelTrace {
    // A dim x dim matrix; each block handles a 32 x block_rows tile.
    let (dim, block_rows) = match scale {
        Scale::Test => (64u64, 4u32),
        Scale::Full => (256u64, 8u32),
    };
    let tiles_x = dim / WARP;
    let tiles_y = dim / u64::from(block_rows);
    let blocks = (tiles_x * tiles_y) as u32;
    let threads = 32 * block_rows;
    let geometry = Geometry::new(blocks, threads);
    let arrays = vec![
        ArrayDef::new_2d(0, "idata", DType::F32, dim, dim, false),
        ArrayDef::new_2d(1, "odata", DType::F32, dim, dim, true),
    ];
    let mut warps = Vec::new();
    for block in 0..blocks {
        let tile_x = (u64::from(block) % tiles_x) * WARP;
        let tile_y = (u64::from(block) / tiles_x) * u64::from(block_rows);
        for warp in 0..geometry.warps_per_block() {
            // Each warp reads one row of the tile and writes it as a
            // column of the output.
            let y = tile_y + u64::from(warp);
            let read: Vec<(u64, u64)> = (0..WARP).map(|l| (tile_x + l, y)).collect();
            let write: Vec<(u64, u64)> = (0..WARP).map(|l| (y, tile_x + l)).collect();
            let ops = vec![
                tid_preamble(),
                SymOp::IntAlu(2), // x/y index math
                addr(0),
                load_xy(0, read),
                SymOp::WaitLoads,
                addr(1),
                store_xy(1, write),
            ];
            warps.push(WarpTrace { block, warp, ops });
        }
    }
    KernelTrace {
        name: "transposeNaive".into(),
        arrays,
        geometry,
        warps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hms_trace::ElemIdx;

    #[test]
    fn writes_are_transposed_reads() {
        let kt = build(Scale::Test);
        for w in &kt.warps {
            let mut read = None;
            let mut write = None;
            for op in &w.ops {
                if let SymOp::Access(m) = op {
                    if m.is_store {
                        write = Some(m.idx.clone());
                    } else {
                        read = Some(m.idx.clone());
                    }
                }
            }
            let (r, wr) = (read.unwrap(), write.unwrap());
            for (ri, wi) in r.iter().zip(&wr) {
                let Some(ElemIdx::XY(rx, ry)) = ri else {
                    panic!()
                };
                let Some(ElemIdx::XY(wx, wy)) = wi else {
                    panic!()
                };
                assert_eq!((rx, ry), (wy, wx));
            }
        }
    }
}
