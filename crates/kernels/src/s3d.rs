//! SHOC `S3D` (`gr_base`): chemical reaction-rate evaluation. Each grid
//! point reads pressure/temperature (`gpu_p`) and a long vector of
//! species mass fractions (`gpu_y`, species-major so every load
//! coalesces), then burns many FLOPs and transcendentals per species.
//! Table IV tests `gpu_p(G->T)`, `gpu_y(G->T)`, and both together.

use hms_trace::{KernelTrace, SymOp, WarpTrace};
use hms_types::{ArrayDef, DType, Geometry};

use crate::common::{addr, load, store, tid_preamble, warp_tids};
use crate::Scale;

pub fn build(scale: Scale) -> KernelTrace {
    let (blocks, threads, species) = match scale {
        Scale::Test => (4u32, 64u32, 4u64),
        Scale::Full => (24u32, 128u32, 22u64),
    };
    let points = u64::from(blocks) * u64::from(threads);
    let geometry = Geometry::new(blocks, threads);
    let arrays = vec![
        ArrayDef::new_1d(0, "gpu_p", DType::F64, points * 2, false), // p and T interleaved blocks
        ArrayDef::new_1d(1, "gpu_y", DType::F64, points * species, false),
        ArrayDef::new_1d(2, "gpu_wdot", DType::F64, points * species, true),
    ];
    let mut warps = Vec::new();
    for block in 0..blocks {
        for warp in 0..geometry.warps_per_block() {
            let tids: Vec<u64> = warp_tids(block, warp, threads).collect();
            let mut ops = vec![tid_preamble()];
            // Pressure and temperature.
            ops.push(addr(0));
            ops.push(load(0, tids.iter().copied()));
            ops.push(addr(0));
            ops.push(load(0, tids.iter().map(|&i| points + i)));
            ops.push(SymOp::WaitLoads);
            ops.push(SymOp::Sfu(2)); // log(T), 1/T
            ops.push(SymOp::Fp64(4));
            for s in 0..species {
                let idx: Vec<u64> = tids.iter().map(|&i| s * points + i).collect();
                ops.push(addr(1));
                ops.push(load(1, idx.iter().copied()));
                ops.push(SymOp::WaitLoads);
                // Arrhenius rate: exp + polynomial, double precision.
                ops.push(SymOp::Sfu(1));
                ops.push(SymOp::Fp64(8));
                ops.push(addr(2));
                ops.push(store(2, idx));
            }
            warps.push(WarpTrace { block, warp, ops });
        }
    }
    KernelTrace {
        name: "gr_base".into(),
        arrays,
        geometry,
        warps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn species_loop_shape() {
        let kt = build(Scale::Test);
        let w = &kt.warps[0];
        let stores = w
            .ops
            .iter()
            .filter(|o| matches!(o, SymOp::Access(m) if m.is_store))
            .count();
        assert_eq!(stores, 4); // one per species at test scale
        let sfu: u64 = w
            .ops
            .iter()
            .map(|o| match o {
                SymOp::Sfu(n) => u64::from(*n),
                _ => 0,
            })
            .sum();
        assert!(sfu >= 6);
    }
}
