//! Vector addition `v = a + b` — the paper's running example (Figure 2),
//! whose four placements of `a` and `b` illustrate the addressing-mode
//! differences between global, texture, constant and shared memories.

use hms_trace::{KernelTrace, SymOp, WarpTrace};
use hms_types::{ArrayDef, DType, Geometry};

use crate::common::{addr, load, store, tid_preamble, warp_tids};
use crate::Scale;

/// Build the vecadd kernel: `v[id] = a[id] + b[id]`.
pub fn build(scale: Scale) -> KernelTrace {
    let (blocks, threads) = match scale {
        Scale::Test => (4, 64),
        Scale::Full => (64, 128),
    };
    build_sized(blocks, threads)
}

/// [`build`] at an explicit launch size.
pub fn build_sized(blocks: u32, threads: u32) -> KernelTrace {
    let n = u64::from(blocks) * u64::from(threads);
    let geometry = Geometry::new(blocks, threads);
    let arrays = vec![
        ArrayDef::new_1d(0, "a", DType::F32, n, false),
        ArrayDef::new_1d(1, "b", DType::F32, n, false),
        ArrayDef::new_1d(2, "v", DType::F32, n, true),
    ];
    let mut warps = Vec::new();
    for block in 0..blocks {
        for warp in 0..geometry.warps_per_block() {
            let tids: Vec<u64> = warp_tids(block, warp, threads).collect();
            let ops = vec![
                tid_preamble(),
                SymOp::IntAlu(1), // bounds check `id < N`
                addr(0),
                load(0, tids.iter().copied()),
                addr(1),
                load(1, tids.iter().copied()),
                SymOp::WaitLoads,
                SymOp::FpAlu(1),
                addr(2),
                store(2, tids.iter().copied()),
            ];
            warps.push(WarpTrace { block, warp, ops });
        }
    }
    KernelTrace {
        name: "vecAdd".into(),
        arrays,
        geometry,
        warps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape() {
        let kt = build(Scale::Test);
        assert_eq!(kt.arrays.len(), 3);
        assert_eq!(kt.warps.len(), 4 * 2);
        assert!(kt.arrays[2].written);
        // Every warp: 2 loads, 1 store, 3 addr-calcs.
        let loads = kt.warps[0]
            .ops
            .iter()
            .filter(|o| matches!(o, SymOp::Access(m) if !m.is_store))
            .count();
        assert_eq!(loads, 2);
    }
}
