//! SHOC `spmv` (`spmv_csr_vector_kernel`): one warp per CSR row; the
//! dense vector `d_vec` is gathered through the column-index array — the
//! classic texture-memory workload (SHOC's sample placement binds
//! `d_vec` to a texture, and Table IV's training set moves it back to
//! global, plus `rowDelimiters` into shared/constant/texture).

use hms_stats::rng::Rng;

use hms_trace::{KernelTrace, SymOp, WarpTrace};
use hms_types::{ArrayDef, DType, Geometry};

use crate::common::{addr, load_masked, load_uniform, store_masked, tid_preamble, WARP};
use crate::Scale;

pub fn build(scale: Scale) -> KernelTrace {
    let (rows, nnz_per_row_max, warps_per_block) = match scale {
        Scale::Test => (16u64, 48u64, 2u32),
        Scale::Full => (256u64, 96u64, 4u32),
    };
    build_sized(rows, nnz_per_row_max, warps_per_block, 0x535D)
}

/// [`build`] at explicit matrix dimensions and sparsity seed.
pub fn build_sized(
    rows: u64,
    nnz_per_row_max: u64,
    warps_per_block: u32,
    seed: u64,
) -> KernelTrace {
    let mut rng = Rng::seed_from_u64(seed);
    // Build a CSR structure: row lengths vary (power-law-ish), columns
    // are a mix of near-diagonal and random — the locality profile of
    // real matrices.
    let mut row_len: Vec<u64> = Vec::with_capacity(rows as usize);
    for _ in 0..rows {
        let r: f64 = rng.gen_f64();
        row_len.push(((nnz_per_row_max as f64) * r * r).max(1.0) as u64);
    }
    let nnz: u64 = row_len.iter().sum();
    let dim = rows * 8; // vector length
    let cols: Vec<u64> = {
        let mut v = Vec::with_capacity(nnz as usize);
        for (r, &len) in row_len.iter().enumerate() {
            for _ in 0..len {
                if rng.gen_bool(0.6) {
                    // near-diagonal
                    let c = (r as u64 * 8 + rng.gen_range(0..16u64)).min(dim - 1);
                    v.push(c);
                } else {
                    v.push(rng.gen_range(0..dim));
                }
            }
        }
        v
    };
    let blocks = (rows as u32).div_ceil(warps_per_block);
    let geometry = Geometry::new(blocks, warps_per_block * 32);
    let arrays = vec![
        ArrayDef::new_1d(0, "val", DType::F32, nnz, false),
        ArrayDef::new_1d(1, "cols", DType::U32, nnz, false),
        ArrayDef::new_1d(2, "rowDelimiters", DType::U32, rows + 1, false),
        ArrayDef::new_1d(3, "d_vec", DType::F32, dim, false),
        ArrayDef::new_1d(4, "out", DType::F32, rows, true),
    ];
    let row_start: Vec<u64> = {
        let mut v = vec![0u64];
        for &l in &row_len {
            v.push(v.last().unwrap() + l);
        }
        v
    };
    let mut warps = Vec::new();
    for block in 0..blocks {
        for warp in 0..warps_per_block {
            let row = u64::from(block) * u64::from(warps_per_block) + u64::from(warp);
            let mut ops = vec![tid_preamble()];
            if row >= rows {
                warps.push(WarpTrace { block, warp, ops });
                continue;
            }
            // Row bounds: uniform reads (all lanes need the same two
            // delimiters).
            ops.push(addr(2));
            ops.push(load_uniform(2, row));
            ops.push(addr(2));
            ops.push(load_uniform(2, row + 1));
            ops.push(SymOp::WaitLoads);
            ops.push(SymOp::IntAlu(2));
            let (start, end) = (row_start[row as usize], row_start[row as usize + 1]);
            // Warp-strided sweep over the row's nonzeros.
            let mut base = start;
            while base < end {
                let idx: Vec<Option<u64>> = (0..WARP)
                    .map(|l| (base + l < end).then_some(base + l))
                    .collect();
                ops.push(addr(0));
                ops.push(load_masked(0, idx.iter().copied()));
                ops.push(addr(1));
                ops.push(load_masked(1, idx.iter().copied()));
                ops.push(SymOp::WaitLoads);
                // Gather the vector through the loaded column indices.
                let gather: Vec<Option<u64>> = (0..WARP)
                    .map(|l| (base + l < end).then(|| cols[(base + l) as usize]))
                    .collect();
                ops.push(addr(3));
                ops.push(load_masked(3, gather));
                ops.push(SymOp::WaitLoads);
                ops.push(SymOp::FpAlu(1)); // fma into the running sum
                base += WARP;
            }
            // Intra-warp reduction (register shuffles) and the row store
            // by lane 0.
            ops.push(SymOp::FpAlu(5));
            let out: Vec<Option<u64>> = (0..WARP).map(|l| (l == 0).then_some(row)).collect();
            ops.push(addr(4));
            ops.push(store_masked(4, out));
            warps.push(WarpTrace { block, warp, ops });
        }
    }
    KernelTrace {
        name: "spmv_csr_vector".into(),
        arrays,
        geometry,
        warps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gathers_are_irregular() {
        let kt = build(Scale::Test);
        // Gather loads of d_vec should not be a contiguous warp access
        // for at least one warp.
        let mut any_scattered = false;
        for w in &kt.warps {
            for op in &w.ops {
                if let SymOp::Access(m) = op {
                    if m.array.0 == 3 {
                        let idx: Vec<u64> = m
                            .idx
                            .iter()
                            .flatten()
                            .map(|i| {
                                let hms_trace::ElemIdx::Lin(i) = i else {
                                    panic!()
                                };
                                *i
                            })
                            .collect();
                        if idx.windows(2).any(|p| p[1] != p[0] + 1) {
                            any_scattered = true;
                        }
                    }
                }
            }
        }
        assert!(any_scattered);
    }

    #[test]
    fn row_delimiter_reads_are_uniform() {
        let kt = build(Scale::Test);
        for w in &kt.warps {
            for op in &w.ops {
                if let SymOp::Access(m) = op {
                    if m.array.0 == 2 {
                        let first = m.idx[0];
                        assert!(m.idx.iter().all(|i| *i == first));
                    }
                }
            }
        }
    }
}
