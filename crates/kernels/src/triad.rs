//! SHOC `triad`: `A[i] = B[i] + s * C[i]` — a pure streaming kernel with
//! no reuse. Table IV's test moves `B` into shared memory
//! (`triad[B(G->S)]`), a placement that *loses*: the staging copy costs as
//! much as the stream itself.

use hms_trace::{KernelTrace, SymOp, WarpTrace};
use hms_types::{ArrayDef, DType, Geometry};

use crate::common::{addr, load, store, tid_preamble, warp_tids};
use crate::Scale;

pub fn build(scale: Scale) -> KernelTrace {
    // Sized so the arrays stay within one SM's shared memory: Table IV's
    // `triad[B(G->S)]` test must be legal, and staging the whole stream
    // per block is exactly the cost that makes it lose.
    let (blocks, threads, iters) = match scale {
        Scale::Test => (4, 64, 2),
        Scale::Full => (24, 128, 2),
    };
    // Each thread strides through `iters` grid-sized chunks, the SHOC
    // triad pattern.
    let n = u64::from(blocks) * u64::from(threads) * iters;
    let geometry = Geometry::new(blocks, threads);
    let arrays = vec![
        ArrayDef::new_1d(0, "A", DType::F32, n, true),
        ArrayDef::new_1d(1, "B", DType::F32, n, false),
        ArrayDef::new_1d(2, "C", DType::F32, n, false),
    ];
    let grid_span = u64::from(blocks) * u64::from(threads);
    let mut warps = Vec::new();
    for block in 0..blocks {
        for warp in 0..geometry.warps_per_block() {
            let tids: Vec<u64> = warp_tids(block, warp, threads).collect();
            let mut ops = vec![tid_preamble()];
            for it in 0..iters {
                let idx: Vec<u64> = tids.iter().map(|t| t + it * grid_span).collect();
                ops.push(addr(1));
                ops.push(load(1, idx.iter().copied()));
                ops.push(addr(2));
                ops.push(load(2, idx.iter().copied()));
                ops.push(SymOp::WaitLoads);
                ops.push(SymOp::FpAlu(1)); // fused multiply-add
                ops.push(addr(0));
                ops.push(store(0, idx.iter().copied()));
                ops.push(SymOp::IntAlu(1)); // index advance
            }
            warps.push(WarpTrace { block, warp, ops });
        }
    }
    KernelTrace {
        name: "triad".into(),
        arrays,
        geometry,
        warps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_indices_cover_disjoint_chunks() {
        let kt = build(Scale::Test);
        // Collect all loaded B-indices; they must be unique (no reuse).
        let mut seen = std::collections::HashSet::new();
        for w in &kt.warps {
            for op in &w.ops {
                if let SymOp::Access(m) = op {
                    if m.array.0 == 1 && !m.is_store {
                        for i in m.idx.iter().flatten() {
                            let hms_trace::ElemIdx::Lin(i) = i else {
                                panic!()
                            };
                            assert!(seen.insert(*i), "index {i} reused");
                        }
                    }
                }
            }
        }
        assert_eq!(seen.len() as u64, kt.arrays[1].dims.elements());
    }
}
