//! SHOC `stencil2d`: a 9-point stencil over a 2-D grid. Each output cell
//! reads its 3x3 neighbourhood — the canonical 2-D-locality workload that
//! Table IV tests with `data(G->T)`.

use hms_trace::{KernelTrace, SymOp, WarpTrace};
use hms_types::{ArrayDef, DType, Geometry};

use crate::common::{addr, load_xy, store_xy, tid_preamble, WARP};
use crate::Scale;

pub fn build(scale: Scale) -> KernelTrace {
    let (dim, rows_per_block) = match scale {
        Scale::Test => (64u64, 4u32),
        Scale::Full => (192u64, 8u32),
    };
    let inner = dim - 2; // halo excluded
    let tiles_x = inner.div_ceil(WARP);
    let tiles_y = inner.div_ceil(u64::from(rows_per_block));
    let blocks = (tiles_x * tiles_y) as u32;
    let threads = 32 * rows_per_block;
    let geometry = Geometry::new(blocks, threads);
    let arrays = vec![
        ArrayDef::new_2d(0, "data", DType::F32, dim, dim, false),
        ArrayDef::new_2d(1, "out", DType::F32, dim, dim, true),
    ];
    let mut warps = Vec::new();
    for block in 0..blocks {
        let bx = (u64::from(block) % tiles_x) * WARP;
        let by = (u64::from(block) / tiles_x) * u64::from(rows_per_block);
        for warp in 0..geometry.warps_per_block() {
            let y = by + u64::from(warp) + 1;
            let mut ops = vec![tid_preamble(), SymOp::IntAlu(2)];
            if y > inner {
                // Out-of-range row: this warp only computes its indices.
                warps.push(WarpTrace { block, warp, ops });
                continue;
            }
            // 3 rows x 3 columns of loads around each lane's cell.
            for dy in [-1i64, 0, 1] {
                for dx in [-1i64, 0, 1] {
                    let coords: Vec<(u64, u64)> = (0..WARP)
                        .map(|l| {
                            let x = (bx + l + 1).min(inner) as i64 + dx;
                            ((x.max(0) as u64).min(dim - 1), (y as i64 + dy) as u64)
                        })
                        .collect();
                    ops.push(addr(0));
                    ops.push(load_xy(0, coords));
                }
                // Accumulate the row's three taps while the next row
                // streams in.
                ops.push(SymOp::FpAlu(3));
            }
            ops.push(SymOp::WaitLoads);
            ops.push(SymOp::FpAlu(2)); // center weighting + final combine
            let out: Vec<(u64, u64)> = (0..WARP).map(|l| ((bx + l + 1).min(inner), y)).collect();
            ops.push(addr(1));
            ops.push(store_xy(1, out));
            warps.push(WarpTrace { block, warp, ops });
        }
    }
    KernelTrace {
        name: "StencilKernel".into(),
        arrays,
        geometry,
        warps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_loads_per_active_warp() {
        let kt = build(Scale::Test);
        let loads = kt.warps[0]
            .ops
            .iter()
            .filter(|o| matches!(o, SymOp::Access(m) if !m.is_store))
            .count();
        assert_eq!(loads, 9);
    }

    #[test]
    fn coordinates_stay_in_bounds() {
        let kt = build(Scale::Test);
        let (w, h) = match kt.arrays[0].dims {
            hms_types::Dims::D2 { width, height } => (width, height),
            _ => panic!(),
        };
        for warp in &kt.warps {
            for op in &warp.ops {
                if let SymOp::Access(m) = op {
                    for i in m.idx.iter().flatten() {
                        let hms_trace::ElemIdx::XY(x, y) = i else {
                            panic!()
                        };
                        assert!(*x < w && *y < h, "({x},{y}) out of {w}x{h}");
                    }
                }
            }
        }
    }
}
