//! SHOC `bfs` (`BFS_kernel_warp`): a frontier expansion step. Threads
//! whose vertex is on the frontier walk its adjacency list in
//! `edgeArray` and relax neighbor levels — heavily masked warps and
//! irregular gathers. Table IV tests `edgeArray(G->T)`.

use hms_stats::rng::Rng;

use hms_trace::{KernelTrace, SymOp, WarpTrace};
use hms_types::{ArrayDef, DType, Geometry};

use crate::common::{addr, load, load_masked, store_masked, tid_preamble, warp_tids};
use crate::Scale;

pub fn build(scale: Scale) -> KernelTrace {
    let (blocks, threads, max_degree, frontier_fraction) = match scale {
        Scale::Test => (4u32, 64u32, 6u64, 0.4),
        Scale::Full => (32u32, 128u32, 12u64, 0.3),
    };
    let vertices = u64::from(blocks) * u64::from(threads);
    let edges = vertices * max_degree;
    let mut rng = Rng::seed_from_u64(0xBF5);
    let on_frontier: Vec<bool> = (0..vertices)
        .map(|_| rng.gen_bool(frontier_fraction))
        .collect();
    let degree: Vec<u64> = (0..vertices)
        .map(|_| rng.gen_range(1..=max_degree))
        .collect();
    let neighbor: Vec<u64> = (0..edges).map(|_| rng.gen_range(0..vertices)).collect();
    let geometry = Geometry::new(blocks, threads);
    let arrays = vec![
        ArrayDef::new_1d(0, "edgeArray", DType::U32, edges, false),
        ArrayDef::new_1d(1, "levels", DType::U32, vertices, true),
        ArrayDef::new_1d(2, "edgeOffsets", DType::U32, vertices + 1, false),
    ];
    let mut warps = Vec::new();
    for block in 0..blocks {
        for warp in 0..geometry.warps_per_block() {
            let tids: Vec<u64> = warp_tids(block, warp, threads).collect();
            let mut ops = vec![tid_preamble()];
            // Load own level + adjacency bounds (coalesced).
            ops.push(addr(1));
            ops.push(load(1, tids.iter().copied()));
            ops.push(addr(2));
            ops.push(load(2, tids.iter().copied()));
            ops.push(SymOp::WaitLoads);
            ops.push(SymOp::IntAlu(2)); // frontier test + loop bounds
            for step in 0..max_degree {
                // Lanes active only while on the frontier with edges left.
                let edge_idx: Vec<Option<u64>> = tids
                    .iter()
                    .map(|&v| {
                        (on_frontier[v as usize] && step < degree[v as usize])
                            .then(|| v * max_degree + step)
                    })
                    .collect();
                if edge_idx.iter().all(|e| e.is_none()) {
                    continue;
                }
                ops.push(addr(0));
                ops.push(load_masked(0, edge_idx.iter().copied()));
                ops.push(SymOp::WaitLoads);
                // Gather + relax the neighbor's level.
                let neigh_idx: Vec<Option<u64>> = edge_idx
                    .iter()
                    .map(|oe| oe.map(|e| neighbor[e as usize]))
                    .collect();
                ops.push(addr(1));
                ops.push(load_masked(1, neigh_idx.iter().copied()));
                ops.push(SymOp::WaitLoads);
                ops.push(SymOp::IntAlu(1)); // min(level, mine + 1)
                ops.push(addr(1));
                ops.push(store_masked(1, neigh_idx));
            }
            warps.push(WarpTrace { block, warp, ops });
        }
    }
    KernelTrace {
        name: "BFS_kernel_warp".into(),
        arrays,
        geometry,
        warps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::WARP;

    #[test]
    fn warps_are_partially_masked() {
        let kt = build(Scale::Test);
        let mut saw_partial = false;
        for w in &kt.warps {
            for op in &w.ops {
                if let SymOp::Access(m) = op {
                    if m.array.0 == 0 {
                        let act = m.active_lanes();
                        assert!(act >= 1);
                        if act < WARP as u32 {
                            saw_partial = true;
                        }
                    }
                }
            }
        }
        assert!(saw_partial, "frontier masking never kicked in");
    }

    #[test]
    fn level_updates_follow_edge_loads() {
        let kt = build(Scale::Test);
        for w in &kt.warps {
            let stores = w
                .ops
                .iter()
                .filter(|o| matches!(o, SymOp::Access(m) if m.is_store))
                .count();
            let edge_loads = w
                .ops
                .iter()
                .filter(|o| matches!(o, SymOp::Access(m) if !m.is_store && m.array.0 == 0))
                .count();
            assert_eq!(stores, edge_loads);
        }
    }
}
