//! Shared helpers for the kernel generators.

use hms_trace::{ElemIdx, MemRef, SymOp};
use hms_types::ArrayId;

/// Threads per warp used by every generator.
pub const WARP: u64 = 32;

/// The global thread ids of one warp (`block * threads + warp*32 + lane`).
pub fn warp_tids(block: u32, warp: u32, block_threads: u32) -> impl Iterator<Item = u64> {
    let base = u64::from(block) * u64::from(block_threads) + u64::from(warp) * WARP;
    base..base + WARP
}

/// The canonical two-instruction thread-id preamble
/// (`blockIdx.x * blockDim.x + threadIdx.x`).
pub fn tid_preamble() -> SymOp {
    SymOp::IntAlu(2)
}

/// An `AddrCalc` op for one upcoming reference to `array`.
pub fn addr(array: u32) -> SymOp {
    SymOp::AddrCalc {
        array: ArrayId(array),
        count: 1,
    }
}

/// A fully-active warp load of linear element indices.
pub fn load(array: u32, idx: impl IntoIterator<Item = u64>) -> SymOp {
    SymOp::Access(MemRef::load_lin(ArrayId(array), idx))
}

/// A warp load where each lane may be inactive.
pub fn load_masked(array: u32, idx: impl IntoIterator<Item = Option<u64>>) -> SymOp {
    SymOp::Access(MemRef::load(
        ArrayId(array),
        idx.into_iter().map(|o| o.map(ElemIdx::Lin)).collect(),
    ))
}

/// A warp load of 2-D element coordinates.
pub fn load_xy(array: u32, idx: impl IntoIterator<Item = (u64, u64)>) -> SymOp {
    SymOp::Access(MemRef::load(
        ArrayId(array),
        idx.into_iter()
            .map(|(x, y)| Some(ElemIdx::XY(x, y)))
            .collect(),
    ))
}

/// A uniform (broadcast) load: all 32 lanes read element `i`.
pub fn load_uniform(array: u32, i: u64) -> SymOp {
    SymOp::Access(MemRef::load(
        ArrayId(array),
        vec![Some(ElemIdx::Lin(i)); WARP as usize],
    ))
}

/// A fully-active warp store of linear element indices.
pub fn store(array: u32, idx: impl IntoIterator<Item = u64>) -> SymOp {
    SymOp::Access(MemRef::store_lin(ArrayId(array), idx))
}

/// A warp store where each lane may be inactive.
pub fn store_masked(array: u32, idx: impl IntoIterator<Item = Option<u64>>) -> SymOp {
    SymOp::Access(MemRef::store(
        ArrayId(array),
        idx.into_iter().map(|o| o.map(ElemIdx::Lin)).collect(),
    ))
}

/// A warp store of 2-D element coordinates.
pub fn store_xy(array: u32, idx: impl IntoIterator<Item = (u64, u64)>) -> SymOp {
    SymOp::Access(MemRef::store(
        ArrayId(array),
        idx.into_iter()
            .map(|(x, y)| Some(ElemIdx::XY(x, y)))
            .collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warp_tids_are_contiguous() {
        let tids: Vec<u64> = warp_tids(2, 1, 64).collect();
        assert_eq!(tids[0], 2 * 64 + 32);
        assert_eq!(tids.len(), 32);
        assert_eq!(tids[31], tids[0] + 31);
    }

    #[test]
    fn uniform_load_broadcasts() {
        let SymOp::Access(m) = load_uniform(3, 7) else {
            panic!()
        };
        assert_eq!(m.active_lanes(), 32);
        assert!(m.idx.iter().all(|i| *i == Some(ElemIdx::Lin(7))));
    }
}
