//! SHOC `fft` (`FFT512_device`): each block transforms 512 points,
//! staging them through the scratch buffer `smem` with *strided*
//! shared-memory accesses — the bank-conflict-heavy pattern that makes
//! Table IV's `FFT512_device[smem(S->G)]` placement test interesting:
//! moving the staging buffer to global memory trades bank-conflict
//! replays for off-chip traffic.

use hms_trace::{KernelTrace, SymOp, WarpTrace};
use hms_types::{ArrayDef, DType, Geometry};

use crate::common::{addr, load, store, tid_preamble, WARP};
use crate::Scale;

/// Points per block.
pub const POINTS: u64 = 512;
/// Threads per block (each handles 8 points, as in SHOC).
const THREADS: u32 = 64;

pub fn build(scale: Scale) -> KernelTrace {
    let blocks: u32 = match scale {
        Scale::Test => 4,
        Scale::Full => 48,
    };
    let n = POINTS * u64::from(blocks);
    let geometry = Geometry::new(blocks, THREADS);
    let arrays = vec![
        ArrayDef::new_1d(0, "work", DType::F32, n, true),
        // +padding column in real SHOC; conflicts are the point here.
        ArrayDef::new_1d(1, "smem", DType::F32, POINTS, true)
            .scratch()
            .per_block(),
    ];
    let per_thread = POINTS / u64::from(THREADS); // 8
    let stages = [1u64, 8, 64]; // radix-8 stage strides within 512
    let mut warps = Vec::new();
    for block in 0..blocks {
        let gbase = u64::from(block) * POINTS;
        for warp in 0..geometry.warps_per_block() {
            let lane0 = u64::from(warp) * WARP;
            let mut ops = vec![tid_preamble()];
            // Load 8 points per thread, coalesced from global.
            for p in 0..per_thread {
                let idx: Vec<u64> = (0..WARP)
                    .map(|l| gbase + p * u64::from(THREADS) + lane0 + l)
                    .collect();
                ops.push(addr(0));
                ops.push(load(0, idx));
            }
            ops.push(SymOp::WaitLoads);
            ops.push(SymOp::FpAlu(8)); // radix-8 butterfly on registers
            for (s, &stride) in stages.iter().enumerate() {
                // Exchange through the staging buffer with a
                // stage-dependent stride: stride 8 and 64 collide in the
                // 32-bank layout (bank conflicts), stride 1 does not.
                for p in 0..per_thread {
                    let idx: Vec<u64> = (0..WARP)
                        .map(|l| {
                            let t = lane0 + l; // thread id in block
                            (t * stride + p * u64::from(THREADS) * stride) % POINTS
                        })
                        .collect();
                    ops.push(addr(1));
                    ops.push(store(1, idx));
                }
                ops.push(SymOp::SyncThreads);
                for p in 0..per_thread {
                    let idx: Vec<u64> = (0..WARP)
                        .map(|l| {
                            let t = lane0 + l;
                            (t + p * u64::from(THREADS) + s as u64 * 16) % POINTS
                        })
                        .collect();
                    ops.push(addr(1));
                    ops.push(load(1, idx));
                }
                ops.push(SymOp::WaitLoads);
                ops.push(SymOp::Sfu(2)); // twiddle sin/cos
                ops.push(SymOp::FpAlu(8));
                ops.push(SymOp::SyncThreads);
            }
            // Write results back, coalesced.
            for p in 0..per_thread {
                let idx: Vec<u64> = (0..WARP)
                    .map(|l| gbase + p * u64::from(THREADS) + lane0 + l)
                    .collect();
                ops.push(addr(0));
                ops.push(store(0, idx));
            }
            warps.push(WarpTrace { block, warp, ops });
        }
    }
    KernelTrace {
        name: "FFT512_device".into(),
        arrays,
        geometry,
        warps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hms_cache::shared_conflict_passes;
    use hms_trace::ElemIdx;

    #[test]
    fn strided_stage_conflicts_in_shared_banks() {
        let kt = build(Scale::Test);
        // Find a store to smem with stride 8: words 8 apart in 32 banks
        // collide 8 ways (8*4B steps => every 4th bank, 8 lanes per bank).
        let mut worst = 1;
        for op in &kt.warps[0].ops {
            if let SymOp::Access(m) = op {
                if m.array.0 == 1 {
                    let addrs: Vec<u64> = m
                        .idx
                        .iter()
                        .flatten()
                        .map(|i| {
                            let ElemIdx::Lin(i) = i else { panic!() };
                            i * 4
                        })
                        .collect();
                    worst = worst.max(shared_conflict_passes(&addrs, 32));
                }
            }
        }
        assert!(worst >= 8, "expected >=8-way conflicts, got {worst}");
    }

    #[test]
    fn smem_is_scratch() {
        let kt = build(Scale::Test);
        assert!(kt.arrays[1].scratch);
        assert!(kt.arrays[1].per_block);
    }
}
