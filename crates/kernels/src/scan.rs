//! SHOC `scan`'s first phase (`reduce`): each block strides over a 2-D
//! view of `g_idata` accumulating a partial sum, then tree-reduces in a
//! scratch buffer. Table IV tests `reduce[g_idata(G->2T)]`, which is why
//! the input carries a 2-D shape here.

use hms_trace::{KernelTrace, SymOp, WarpTrace};
use hms_types::{ArrayDef, DType, Geometry};

use crate::common::{addr, load_masked, load_xy, store_masked, tid_preamble, WARP};
use crate::Scale;

pub fn build(scale: Scale) -> KernelTrace {
    let (width, height, blocks, threads) = match scale {
        Scale::Test => (64u64, 16u64, 4u32, 64u32),
        Scale::Full => (256u64, 64u64, 32u32, 128u32),
    };
    let geometry = Geometry::new(blocks, threads);
    let arrays = vec![
        ArrayDef::new_2d(0, "g_idata", DType::F32, width, height, false),
        ArrayDef::new_1d(1, "s_block", DType::F32, u64::from(threads), true)
            .scratch()
            .per_block(),
        ArrayDef::new_1d(2, "d_block_sums", DType::F32, u64::from(blocks), true),
    ];
    // Each block owns a horizontal stripe of rows.
    let rows_per_block = height / u64::from(blocks).min(height);
    let mut warps = Vec::new();
    for block in 0..blocks {
        let row0 = u64::from(block) * rows_per_block % height;
        for warp in 0..geometry.warps_per_block() {
            let mut ops = vec![tid_preamble()];
            // Stride across the stripe: each warp covers its share of
            // columns in every row.
            for row in 0..rows_per_block {
                let y = (row0 + row) % height;
                let mut x0 = u64::from(warp) * WARP;
                while x0 < width {
                    let coords: Vec<(u64, u64)> =
                        (0..WARP).map(|l| ((x0 + l) % width, y)).collect();
                    ops.push(addr(0));
                    ops.push(load_xy(0, coords));
                    ops.push(SymOp::WaitLoads);
                    ops.push(SymOp::FpAlu(1));
                    x0 += u64::from(geometry.warps_per_block()) * WARP;
                }
            }
            // Stage the per-thread partials and tree-reduce.
            let local: Vec<u64> = (0..WARP).map(|l| u64::from(warp) * WARP + l).collect();
            ops.push(addr(1));
            ops.push(store_masked(1, local.iter().map(|&i| Some(i))));
            ops.push(SymOp::SyncThreads);
            let mut stride = u64::from(threads) / 2;
            while stride > 0 {
                let lo: Vec<Option<u64>> =
                    local.iter().map(|&i| (i < stride).then_some(i)).collect();
                let hi: Vec<Option<u64>> = local
                    .iter()
                    .map(|&i| (i < stride).then_some(i + stride))
                    .collect();
                if lo.iter().any(|x| x.is_some()) {
                    ops.push(addr(1));
                    ops.push(load_masked(1, lo.iter().copied()));
                    ops.push(addr(1));
                    ops.push(load_masked(1, hi));
                    ops.push(SymOp::WaitLoads);
                    ops.push(SymOp::FpAlu(1));
                    ops.push(addr(1));
                    ops.push(store_masked(1, lo));
                }
                ops.push(SymOp::SyncThreads);
                stride /= 2;
            }
            if warp == 0 {
                let out: Vec<Option<u64>> = (0..WARP)
                    .map(|l| (l == 0).then_some(u64::from(block)))
                    .collect();
                ops.push(addr(2));
                ops.push(store_masked(2, out));
            }
            warps.push(WarpTrace { block, warp, ops });
        }
    }
    KernelTrace {
        name: "scan_reduce".into(),
        arrays,
        geometry,
        warps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hms_types::Dims;

    #[test]
    fn input_is_2d_for_texture2d_tests() {
        let kt = build(Scale::Test);
        assert!(matches!(kt.arrays[0].dims, Dims::D2 { .. }));
    }

    #[test]
    fn every_warp_reads_input() {
        let kt = build(Scale::Test);
        for w in &kt.warps {
            assert!(w
                .ops
                .iter()
                .any(|o| matches!(o, SymOp::Access(m) if m.array.0 == 0 && !m.is_store)));
        }
    }
}
