//! SHOC radix `sort`'s `reorderData` step: each block stages its 16
//! bucket offsets in the small scratch table `sBlockOffsets`, then
//! scatters keys to their sorted positions. Table IV's test moves the
//! offsets table out of shared memory (`reorderdata[sBlockOffsets(S->G)]`)
//! — a tiny, hot, randomly-indexed table, the classic shared-memory win.

use hms_stats::rng::Rng;

use hms_trace::{KernelTrace, SymOp, WarpTrace};
use hms_types::{ArrayDef, DType, Geometry};

use crate::common::{addr, load, load_masked, store, store_masked, tid_preamble, warp_tids, WARP};
use crate::Scale;

/// Radix buckets per pass.
const BUCKETS: u64 = 16;

pub fn build(scale: Scale) -> KernelTrace {
    let (blocks, threads) = match scale {
        Scale::Test => (4u32, 64u32),
        Scale::Full => (48u32, 128u32),
    };
    let n = u64::from(blocks) * u64::from(threads);
    let geometry = Geometry::new(blocks, threads);
    let arrays = vec![
        ArrayDef::new_1d(0, "keysIn", DType::U32, n, false),
        ArrayDef::new_1d(1, "keysOut", DType::U32, n, true),
        ArrayDef::new_1d(
            2,
            "blockOffsets",
            DType::U32,
            BUCKETS * u64::from(blocks),
            false,
        ),
        ArrayDef::new_1d(3, "sBlockOffsets", DType::U32, BUCKETS, true)
            .scratch()
            .per_block(),
    ];
    let mut rng = Rng::seed_from_u64(0x5047);
    // Pre-draw each key's bucket so the trace is a function of the data,
    // like the real kernel.
    let bucket_of: Vec<u64> = (0..n).map(|_| rng.gen_range(0..BUCKETS)).collect();
    // Scatter destination: position within bucket, per block.
    let mut warps = Vec::new();
    for block in 0..blocks {
        // Per-block running count per bucket to derive scatter targets.
        let mut counts = [0u64; BUCKETS as usize];
        let base = u64::from(block) * u64::from(threads);
        let dest: Vec<u64> = (0..u64::from(threads))
            .map(|t| {
                let b = bucket_of[(base + t) as usize];
                let d = b * n / BUCKETS
                    + u64::from(block) * 4
                    + counts[b as usize] % 4
                    + (counts[b as usize] / 4) * 64 % (n / BUCKETS);
                counts[b as usize] += 1;
                d.min(n - 1)
            })
            .collect();
        for warp in 0..geometry.warps_per_block() {
            let tids: Vec<u64> = warp_tids(block, warp, threads).collect();
            let mut ops = vec![tid_preamble()];
            // Warp 0 stages the block's bucket offsets.
            if warp == 0 {
                let src: Vec<Option<u64>> = (0..WARP)
                    .map(|l| (l < BUCKETS).then(|| u64::from(block) * BUCKETS + l))
                    .collect();
                let dst: Vec<Option<u64>> = (0..WARP).map(|l| (l < BUCKETS).then_some(l)).collect();
                ops.push(addr(2));
                ops.push(load_masked(2, src));
                ops.push(SymOp::WaitLoads);
                ops.push(addr(3));
                ops.push(store_masked(3, dst));
            }
            ops.push(SymOp::SyncThreads);
            // Load key, extract digit, gather offset, scatter.
            ops.push(addr(0));
            ops.push(load(0, tids.iter().copied()));
            ops.push(SymOp::WaitLoads);
            ops.push(SymOp::IntAlu(3)); // shift/mask digit extraction
            let bucket_idx: Vec<u64> = tids.iter().map(|&t| bucket_of[t as usize]).collect();
            ops.push(addr(3));
            ops.push(load(3, bucket_idx));
            ops.push(SymOp::WaitLoads);
            ops.push(SymOp::IntAlu(2)); // destination arithmetic
            let dests: Vec<u64> = tids.iter().map(|&t| dest[(t - base) as usize]).collect();
            ops.push(addr(1));
            ops.push(store(1, dests));
            warps.push(WarpTrace { block, warp, ops });
        }
    }
    KernelTrace {
        name: "reorderData".into(),
        arrays,
        geometry,
        warps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_table_is_tiny_and_block_scoped() {
        let kt = build(Scale::Test);
        assert_eq!(kt.arrays[3].dims.elements(), BUCKETS);
        assert!(kt.arrays[3].per_block);
    }

    #[test]
    fn scatter_stores_are_divergent() {
        // The scatter must touch multiple 128-byte transactions for at
        // least one warp (that is the cost reorderData pays).
        let kt = build(Scale::Test);
        let mut max_txs = 0usize;
        for w in &kt.warps {
            for op in &w.ops {
                if let SymOp::Access(m) = op {
                    if m.is_store && m.array.0 == 1 {
                        let mut txs: Vec<u64> = m
                            .idx
                            .iter()
                            .flatten()
                            .map(|i| {
                                let hms_trace::ElemIdx::Lin(i) = i else {
                                    panic!()
                                };
                                i * 4 / 128
                            })
                            .collect();
                        txs.sort_unstable();
                        txs.dedup();
                        max_txs = max_txs.max(txs.len());
                    }
                }
            }
        }
        assert!(max_txs > 1, "scatter coalesced perfectly — unrealistic");
    }
}
