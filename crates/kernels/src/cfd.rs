//! Rodinia/SDK `cfd` (`cuda_compute_flux`): unstructured-mesh flux
//! computation. Each cell loads its own five conserved `variables`,
//! gathers the four surrounding cells' variables through the mesh
//! connectivity, and does heavy floating-point work. Table IV tests
//! `variables(G->T)` — gathers through a texture.

use hms_stats::rng::Rng;

use hms_trace::{KernelTrace, SymOp, WarpTrace};
use hms_types::{ArrayDef, DType, Geometry};

use crate::common::{addr, load, store, tid_preamble, warp_tids};
use crate::Scale;

/// Conserved variables per cell (density, 3x momentum, energy).
const NVAR: u64 = 5;
/// Faces per cell.
const NNB: u64 = 4;

pub fn build(scale: Scale) -> KernelTrace {
    let (blocks, threads) = match scale {
        Scale::Test => (4u32, 64u32),
        Scale::Full => (32u32, 128u32),
    };
    let cells = u64::from(blocks) * u64::from(threads);
    let mut rng = Rng::seed_from_u64(0xCFD);
    // Mesh connectivity: neighbors cluster spatially.
    let nb: Vec<u64> = (0..cells * NNB)
        .map(|k| {
            let i = k / NNB;
            let off = rng.gen_range(-32i64..=32);
            ((i as i64 + off).rem_euclid(cells as i64)) as u64
        })
        .collect();
    let geometry = Geometry::new(blocks, threads);
    let arrays = vec![
        ArrayDef::new_1d(0, "variables", DType::F32, cells * NVAR, false),
        ArrayDef::new_1d(1, "elements_surrounding", DType::U32, cells * NNB, false),
        ArrayDef::new_1d(2, "normals", DType::F32, cells * NNB, false),
        ArrayDef::new_1d(3, "fluxes", DType::F32, cells * NVAR, true),
    ];
    let mut warps = Vec::new();
    for block in 0..blocks {
        for warp in 0..geometry.warps_per_block() {
            let tids: Vec<u64> = warp_tids(block, warp, threads).collect();
            let mut ops = vec![tid_preamble()];
            // Own variables: NVAR strided loads (SoA layout: v*cells + i).
            for v in 0..NVAR {
                let idx: Vec<u64> = tids.iter().map(|&i| v * cells + i).collect();
                ops.push(addr(0));
                ops.push(load(0, idx));
            }
            ops.push(SymOp::WaitLoads);
            ops.push(SymOp::FpAlu(6)); // velocity, speed of sound
            ops.push(SymOp::Sfu(1)); // sqrt
            for f in 0..NNB {
                // Connectivity + normals: coalesced (f*cells + i).
                let con_idx: Vec<u64> = tids.iter().map(|&i| f * cells + i).collect();
                ops.push(addr(1));
                ops.push(load(1, con_idx.iter().copied()));
                ops.push(addr(2));
                ops.push(load(2, con_idx.iter().copied()));
                ops.push(SymOp::WaitLoads);
                // Gather the neighbor's five variables.
                for v in 0..NVAR {
                    let g: Vec<u64> = tids
                        .iter()
                        .map(|&i| v * cells + nb[(i * NNB + f) as usize])
                        .collect();
                    ops.push(addr(0));
                    ops.push(load(0, g));
                }
                ops.push(SymOp::WaitLoads);
                ops.push(SymOp::FpAlu(12)); // flux contribution
            }
            // Store the five flux components.
            for v in 0..NVAR {
                let idx: Vec<u64> = tids.iter().map(|&i| v * cells + i).collect();
                ops.push(addr(3));
                ops.push(store(3, idx));
            }
            warps.push(WarpTrace { block, warp, ops });
        }
    }
    KernelTrace {
        name: "cuda_compute_flux".into(),
        arrays,
        geometry,
        warps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flux_kernel_is_memory_and_fp_heavy() {
        let kt = build(Scale::Test);
        let w = &kt.warps[0];
        let loads = w
            .ops
            .iter()
            .filter(|o| matches!(o, SymOp::Access(m) if !m.is_store))
            .count() as u64;
        // 5 own + per face (2 + 5 gathers) x 4 faces = 5 + 28 = 33.
        assert_eq!(loads, 5 + NNB * (2 + NVAR));
        let fp: u64 = w
            .ops
            .iter()
            .map(|o| match o {
                SymOp::FpAlu(n) => u64::from(*n),
                _ => 0,
            })
            .sum();
        assert!(fp >= 50);
    }
}
