//! SHOC `reduction`: each block loads a slice of `idata`, stages partial
//! sums in the scratch buffer `sdata`, and tree-reduces it with a barrier
//! per level. Table IV's test is `reduce[sdata(S->G)]` — moving the
//! reduction buffer out of shared memory, exactly the placement our
//! Figure 5 evaluation point `Reduction_2` covers (a row-buffer-heavy
//! loser the constant-latency baseline mispredicts).

use hms_trace::{KernelTrace, SymOp, WarpTrace};
use hms_types::{ArrayDef, DType, Geometry};

use crate::common::{addr, load, load_masked, store, store_masked, tid_preamble, warp_tids, WARP};
use crate::Scale;

pub fn build(scale: Scale) -> KernelTrace {
    let (blocks, threads) = match scale {
        Scale::Test => (4u32, 64u32),
        Scale::Full => (64u32, 128u32),
    };
    let n = u64::from(blocks) * u64::from(threads) * 2;
    let geometry = Geometry::new(blocks, threads);
    let arrays = vec![
        ArrayDef::new_1d(0, "idata", DType::F32, n, false),
        ArrayDef::new_1d(1, "sdata", DType::F32, u64::from(threads), true)
            .scratch()
            .per_block(),
        ArrayDef::new_1d(2, "odata", DType::F32, u64::from(blocks), true),
    ];
    let mut warps = Vec::new();
    for block in 0..blocks {
        for warp in 0..geometry.warps_per_block() {
            let tids: Vec<u64> = warp_tids(block, warp, threads).collect();
            let local: Vec<u64> = (0..WARP).map(|l| u64::from(warp) * WARP + l).collect();
            let mut ops = vec![tid_preamble()];
            // Grid-stride first add: each thread sums two input elements.
            let hi: Vec<u64> = tids.iter().map(|t| t + n / 2).collect();
            ops.push(addr(0));
            ops.push(load(0, tids.iter().copied()));
            ops.push(addr(0));
            ops.push(load(0, hi));
            ops.push(SymOp::WaitLoads);
            ops.push(SymOp::FpAlu(1));
            ops.push(addr(1));
            ops.push(store(1, local.iter().copied()));
            ops.push(SymOp::SyncThreads);
            // Tree reduction: stride halves each level; lanes beyond the
            // stride go inactive.
            let mut stride = u64::from(threads) / 2;
            while stride > 0 {
                let lo: Vec<Option<u64>> =
                    local.iter().map(|&i| (i < stride).then_some(i)).collect();
                let hi: Vec<Option<u64>> = local
                    .iter()
                    .map(|&i| (i < stride).then_some(i + stride))
                    .collect();
                if lo.iter().any(|x| x.is_some()) {
                    ops.push(addr(1));
                    ops.push(load_masked(1, lo.iter().copied()));
                    ops.push(addr(1));
                    ops.push(load_masked(1, hi));
                    ops.push(SymOp::WaitLoads);
                    ops.push(SymOp::FpAlu(1));
                    ops.push(addr(1));
                    ops.push(store_masked(1, lo));
                }
                ops.push(SymOp::SyncThreads);
                stride /= 2;
            }
            // Lane 0 of warp 0 writes the block result.
            if warp == 0 {
                let out: Vec<Option<u64>> = (0..WARP)
                    .map(|l| (l == 0).then_some(u64::from(block)))
                    .collect();
                ops.push(addr(2));
                ops.push(store_masked(2, out));
            }
            warps.push(WarpTrace { block, warp, ops });
        }
    }
    KernelTrace {
        name: "reduce".into(),
        arrays,
        geometry,
        warps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_depth_matches_block_size() {
        let kt = build(Scale::Test);
        // 64 threads -> strides 32,16,8,4,2,1 -> 6 levels, each ends in a
        // sync; plus the initial staging sync.
        let syncs = kt.warps[0]
            .ops
            .iter()
            .filter(|o| matches!(o, SymOp::SyncThreads))
            .count();
        assert_eq!(syncs, 7);
    }

    #[test]
    fn only_warp0_writes_output() {
        let kt = build(Scale::Test);
        for w in &kt.warps {
            let writes_out = w
                .ops
                .iter()
                .any(|o| matches!(o, SymOp::Access(m) if m.is_store && m.array.0 == 2));
            assert_eq!(writes_out, w.warp == 0);
        }
    }
}
