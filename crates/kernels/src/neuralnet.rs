//! SHOC `neuralnet` (`kernelFeedForward1`): a fully-connected layer.
//! Each thread computes one output neuron: `out[j] = f(sum_i in[i] *
//! weights[i][j])`.
//!
//! The weights matrix is the paper's Figure 6 target object, tested in
//! all five placements (G, C, S, T, 2T). The access structure makes the
//! ranking non-obvious:
//!
//! * `in[i]` is uniform across lanes — broadcast-friendly;
//! * `weights[i*OUT + j]` is coalesced across lanes (j = thread), so
//!   global/texture stream it well, but *constant* memory serializes the
//!   32 distinct words per access into 31 divergence replays — the
//!   instruction-replay effect the paper credits for beating [7] on NN_C;
//! * the matrix fills the entire 48 KiB of shared memory, so an `S`
//!   placement pays a large staging copy *and* caps occupancy at one
//!   block per SM — the effect PORPLE's latency-only model misses on
//!   NN_S (Figure 6).

use hms_trace::{KernelTrace, SymOp, WarpTrace};
use hms_types::{ArrayDef, DType, Geometry};

use crate::common::{addr, load, load_uniform, store, tid_preamble, warp_tids};
use crate::Scale;

/// Input and output layer widths: 64 x 192 floats = 48 KiB — exactly the
/// shared-memory capacity, and well inside constant memory's 64 KiB.
pub const INPUTS: u64 = 64;
pub const OUTPUTS: u64 = 192;

pub fn build(scale: Scale) -> KernelTrace {
    let (inputs, batches) = match scale {
        Scale::Test => (16u64, 1u32),
        Scale::Full => (INPUTS, 4u32),
    };
    let outputs = if scale == Scale::Test { 64 } else { OUTPUTS };
    // One thread per output neuron; batches repeat the layer for more
    // work (mini-batch forward passes).
    let threads = 64u32;
    let blocks = (outputs as u32 / threads).max(1) * batches;
    let geometry = Geometry::new(blocks, threads);
    let arrays = vec![
        ArrayDef::new_2d(0, "weights", DType::F32, outputs, inputs, false),
        ArrayDef::new_1d(1, "d_in", DType::F32, inputs, false),
        ArrayDef::new_1d(2, "d_out", DType::F32, outputs * u64::from(batches), true),
    ];
    let neurons_per_batch = outputs / u64::from(threads).min(outputs);
    let _ = neurons_per_batch;
    let mut warps = Vec::new();
    for block in 0..blocks {
        let batch = u64::from(block) / u64::from(outputs as u32 / threads).max(1);
        let j0 =
            (u64::from(block) % u64::from((outputs as u32 / threads).max(1))) * u64::from(threads);
        for warp in 0..geometry.warps_per_block() {
            let lanes: Vec<u64> = warp_tids(0, warp, threads).collect(); // j within block
            let mut ops = vec![tid_preamble()];
            for i in 0..inputs {
                // Uniform input activation.
                ops.push(addr(1));
                ops.push(load_uniform(1, i));
                // Weights row: coalesced over output neurons.
                let widx: Vec<u64> = lanes.iter().map(|&j| i * outputs + j0 + j).collect();
                ops.push(addr(0));
                ops.push(load(0, widx));
                ops.push(SymOp::WaitLoads);
                ops.push(SymOp::FpAlu(1)); // fma
            }
            ops.push(SymOp::Sfu(1)); // sigmoid
            let out: Vec<u64> = lanes.iter().map(|&j| batch * outputs + j0 + j).collect();
            ops.push(addr(2));
            ops.push(store(2, out));
            warps.push(WarpTrace { block, warp, ops });
        }
    }
    KernelTrace {
        name: "kernelFeedForward1".into(),
        arrays,
        geometry,
        warps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hms_types::{GpuConfig, MemorySpace, PlacementMap};

    #[test]
    fn weights_fill_shared_memory_at_full_scale() {
        let kt = build(Scale::Full);
        assert_eq!(kt.arrays[0].size_bytes(), 48 * 1024);
        // Shared placement is legal but exactly at capacity.
        let pm = PlacementMap::all_global(3).with(hms_types::ArrayId(0), MemorySpace::Shared);
        assert!(pm.validate(&kt.arrays, &GpuConfig::tesla_k80()).is_ok());
    }

    #[test]
    fn all_five_weight_placements_are_legal_at_full_scale() {
        let kt = build(Scale::Full);
        let cfg = GpuConfig::tesla_k80();
        for space in MemorySpace::ALL {
            let pm = kt.default_placement().with(hms_types::ArrayId(0), space);
            assert!(
                pm.validate(&kt.arrays, &cfg).is_ok(),
                "weights({space}) rejected"
            );
        }
    }

    #[test]
    fn input_reads_broadcast_and_weight_reads_coalesce() {
        let kt = build(Scale::Test);
        for op in &kt.warps[0].ops {
            if let SymOp::Access(m) = op {
                match m.array.0 {
                    1 => {
                        let first = m.idx[0];
                        assert!(m.idx.iter().all(|i| *i == first));
                    }
                    0 => {
                        let idx: Vec<u64> = m
                            .idx
                            .iter()
                            .flatten()
                            .map(|i| {
                                let hms_trace::ElemIdx::Lin(i) = i else {
                                    panic!()
                                };
                                *i
                            })
                            .collect();
                        assert!(idx.windows(2).all(|p| p[1] == p[0] + 1));
                    }
                    _ => {}
                }
            }
        }
    }
}
