//! SHOC `QTC` (quality-threshold clustering): each thread walks rows of
//! the pairwise `distance_matrix` testing cluster membership. The matrix
//! is read row-by-row with 2-D reuse across threads — Table IV's
//! `distance_matrix_txt(G->2T)` test binds it to a 2-D texture.

use hms_stats::rng::Rng;

use hms_trace::{KernelTrace, SymOp, WarpTrace};
use hms_types::{ArrayDef, DType, Geometry};

use crate::common::{addr, load_xy, store, tid_preamble, warp_tids, WARP};
use crate::Scale;

pub fn build(scale: Scale) -> KernelTrace {
    let (points, blocks, threads, candidates) = match scale {
        Scale::Test => (64u64, 2u32, 64u32, 4u64),
        Scale::Full => (192u64, 12u32, 128u32, 12u64),
    };
    let mut rng = Rng::seed_from_u64(0x97C);
    let geometry = Geometry::new(blocks, threads);
    let arrays = vec![
        ArrayDef::new_2d(0, "distance_matrix", DType::F32, points, points, false),
        ArrayDef::new_1d(1, "cluster_sizes", DType::U32, points, true),
    ];
    let mut warps = Vec::new();
    for block in 0..blocks {
        for warp in 0..geometry.warps_per_block() {
            let tids: Vec<u64> = warp_tids(block, warp, threads).collect();
            let mut ops = vec![tid_preamble()];
            for _ in 0..candidates {
                // All lanes examine the same candidate row (2-D reuse)
                // at lane-specific columns.
                let row = rng.gen_range(0..points);
                let col0 = rng.gen_range(0..points - WARP.min(points - 1));
                let coords: Vec<(u64, u64)> =
                    (0..WARP).map(|l| ((col0 + l) % points, row)).collect();
                ops.push(addr(0));
                ops.push(load_xy(0, coords));
                // And the transposed column (the symmetric distance),
                // which row-major layouts serve badly.
                let coords_t: Vec<(u64, u64)> =
                    (0..WARP).map(|l| (row, (col0 + l) % points)).collect();
                ops.push(addr(0));
                ops.push(load_xy(0, coords_t));
                ops.push(SymOp::WaitLoads);
                ops.push(SymOp::FpAlu(2)); // threshold compare + accumulate
                ops.push(SymOp::IntAlu(1));
            }
            let out: Vec<u64> = tids.iter().map(|&t| t % points).collect();
            ops.push(addr(1));
            ops.push(store(1, out));
            warps.push(WarpTrace { block, warp, ops });
        }
    }
    KernelTrace {
        name: "QTC_device".into(),
        arrays,
        geometry,
        warps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hms_trace::ElemIdx;

    #[test]
    fn reads_both_row_and_column_directions() {
        let kt = build(Scale::Test);
        let mut row_walks = 0;
        let mut col_walks = 0;
        for op in &kt.warps[0].ops {
            if let SymOp::Access(m) = op {
                if m.array.0 == 0 {
                    let Some(ElemIdx::XY(x0, y0)) = m.idx[0] else {
                        panic!()
                    };
                    let Some(ElemIdx::XY(x1, y1)) = m.idx[1] else {
                        panic!()
                    };
                    if y0 == y1 && x0 != x1 {
                        row_walks += 1;
                    }
                    if x0 == x1 && y0 != y1 {
                        col_walks += 1;
                    }
                }
            }
        }
        assert!(row_walks > 0 && col_walks > 0);
    }
}
