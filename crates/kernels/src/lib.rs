//! # hms-kernels
//!
//! Synthetic re-implementations of every benchmark kernel in the paper's
//! Table IV (SHOC suite + CUDA SDK), expressed as symbolic trace
//! generators over `hms-trace`'s kernel IR.
//!
//! Each module reproduces the *memory and compute skeleton* of its
//! namesake: the access patterns (coalesced streams, strided walks,
//! gathers through index arrays, broadcast coefficient reads, shared-
//! memory tiles with or without bank conflicts), the arithmetic intensity,
//! and the launch geometry. That is the entire interface the paper's
//! models see — they never inspect kernel semantics, only the induced
//! instruction and memory streams (see DESIGN.md's substitution table).
//!
//! Irregular inputs (sparse matrices, neighbor lists, graphs) are drawn
//! from seeded RNGs, so every build is deterministic.

pub mod bfs;
pub mod cfd;
pub mod common;
pub mod convolution;
pub mod fft;
pub mod matmul;
pub mod md;
pub mod md5hash;
pub mod neuralnet;
pub mod params;
pub mod qtc;
pub mod reduction;
pub mod s3d;
pub mod scan;
pub mod sort;
pub mod spmv;
pub mod stencil2d;
pub mod transpose;
pub mod triad;
pub mod vecadd;
pub mod wide;

use hms_trace::KernelTrace;

/// Scale of a generated workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Tiny inputs for unit tests (a handful of blocks).
    Test,
    /// Evaluation-sized inputs for the experiment harness.
    Full,
}

impl Scale {
    /// Parse the CLI/wire spelling (`"test"` / `"full"`).
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "test" => Some(Scale::Test),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// The CLI/wire spelling, inverse of [`Scale::parse`].
    pub fn as_str(self) -> &'static str {
        match self {
            Scale::Test => "test",
            Scale::Full => "full",
        }
    }
}

/// A named kernel builder, for the experiment registry.
pub struct KernelSpec {
    pub name: &'static str,
    pub build: fn(Scale) -> KernelTrace,
}

/// Every kernel in the crate, in Table IV order (evaluation set first,
/// then the `T_overlap` training set).
pub fn registry() -> Vec<KernelSpec> {
    vec![
        KernelSpec {
            name: "bfs",
            build: bfs::build,
        },
        KernelSpec {
            name: "fft",
            build: fft::build,
        },
        KernelSpec {
            name: "neuralnet",
            build: neuralnet::build,
        },
        KernelSpec {
            name: "reduction",
            build: reduction::build,
        },
        KernelSpec {
            name: "scan",
            build: scan::build,
        },
        KernelSpec {
            name: "sort",
            build: sort::build,
        },
        KernelSpec {
            name: "stencil2d",
            build: stencil2d::build,
        },
        KernelSpec {
            name: "md5hash",
            build: md5hash::build,
        },
        KernelSpec {
            name: "s3d",
            build: s3d::build,
        },
        KernelSpec {
            name: "convolutionRows",
            build: convolution::build_rows,
        },
        KernelSpec {
            name: "convolutionCols",
            build: convolution::build_cols,
        },
        KernelSpec {
            name: "md",
            build: md::build,
        },
        KernelSpec {
            name: "matrixMul",
            build: matmul::build,
        },
        KernelSpec {
            name: "spmv",
            build: spmv::build,
        },
        KernelSpec {
            name: "transpose",
            build: transpose::build,
        },
        KernelSpec {
            name: "cfd",
            build: cfd::build,
        },
        KernelSpec {
            name: "triad",
            build: triad::build,
        },
        KernelSpec {
            name: "qtc",
            build: qtc::build,
        },
        KernelSpec {
            name: "vecadd",
            build: vecadd::build,
        },
    ]
}

/// Look a kernel up by name. Beyond the Table IV registry this accepts
/// the generated [`wide`] family (`wide3` … `wide12`), which stays out
/// of [`registry`] — the registry is the checksummed paper set, and the
/// exhaustive equivalence suites that iterate it would not terminate on
/// a six-figure placement space.
pub fn by_name(name: &str, scale: Scale) -> Option<KernelTrace> {
    if let Some(spec) = registry().into_iter().find(|k| k.name == name) {
        return Some((spec.build)(scale));
    }
    wide::parse_name(name).map(|n| wide::build_n(n, scale))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hms_sim::simulate_default;
    use hms_trace::materialize;
    use hms_types::GpuConfig;

    /// Every registered kernel must build, validate under its default
    /// placement, materialize, and simulate to completion at test scale.
    #[test]
    fn every_kernel_simulates_at_test_scale() {
        let cfg = GpuConfig::test_small();
        for spec in registry() {
            let kt = (spec.build)(Scale::Test);
            assert!(!kt.warps.is_empty(), "{}: no warps", spec.name);
            assert_eq!(
                kt.geometry.total_warps(),
                kt.warps.len() as u64,
                "{}: geometry/warp mismatch",
                spec.name
            );
            let pm = kt.default_placement();
            let ct = materialize(&kt, &pm, &cfg)
                .unwrap_or_else(|e| panic!("{}: materialize failed: {e}", spec.name));
            let r = simulate_default(&ct, &cfg)
                .unwrap_or_else(|e| panic!("{}: simulate failed: {e}", spec.name));
            assert!(r.cycles > 0, "{}: zero cycles", spec.name);
            assert!(
                r.events.inst_executed > 0,
                "{}: nothing executed",
                spec.name
            );
        }
    }

    #[test]
    fn builds_are_deterministic() {
        for spec in registry() {
            let a = (spec.build)(Scale::Test);
            let b = (spec.build)(Scale::Test);
            assert_eq!(a, b, "{} is not deterministic", spec.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("spmv", Scale::Test).is_some());
        assert!(by_name("nope", Scale::Test).is_none());
        // The generated wide family resolves without being registered.
        let wide = by_name("wide8", Scale::Test).expect("wide8 resolves");
        assert_eq!(wide.arrays.len(), 8);
        assert!(by_name("wide99", Scale::Test).is_none());
        assert!(registry().iter().all(|k| !k.name.starts_with("wide")));
    }
}
