//! SHOC `md` (`compute_lj_force`): Lennard-Jones forces over a neighbor
//! list. The neighbor-index loads are coalesced (`neighList[j*N + i]`)
//! but the position gathers they drive are scattered — which is why the
//! SHOC sample placement binds `d_position` to a texture and Table IV
//! explores `d_position(T->G)` and `neighList(G->T)` moves. The gather
//! clumps also make md the paper's poster child for bursty DRAM arrivals
//! (Figure 4: mean per-bank `c_a` approximately 2.2).

use hms_stats::rng::Rng;

use hms_trace::{KernelTrace, SymOp, WarpTrace};
use hms_types::{ArrayDef, DType, Geometry};

use crate::common::{addr, load, store, tid_preamble, warp_tids};
use crate::Scale;

pub fn build(scale: Scale) -> KernelTrace {
    let (blocks, threads, neighbors) = match scale {
        Scale::Test => (4u32, 64u32, 6u64),
        Scale::Full => (32u32, 128u32, 16u64),
    };
    let atoms = u64::from(blocks) * u64::from(threads);
    let mut rng = Rng::seed_from_u64(0x4D44);
    // Neighbor lists: mostly nearby atoms (spatial locality) with a tail
    // of far ones, reproducing cell-list structure.
    let neigh: Vec<u64> = (0..atoms * neighbors)
        .map(|k| {
            let i = k % atoms;
            if rng.gen_bool(0.7) {
                let span = 64i64;
                let off = rng.gen_range(-span..=span);
                ((i as i64 + off).rem_euclid(atoms as i64)) as u64
            } else {
                rng.gen_range(0..atoms)
            }
        })
        .collect();
    let geometry = Geometry::new(blocks, threads);
    let arrays = vec![
        // position as float4: element index = atom (using one element per
        // atom of a wide type keeps the gather pattern).
        ArrayDef::new_1d(0, "d_position", DType::F64, atoms, false),
        ArrayDef::new_1d(1, "neighList", DType::U32, atoms * neighbors, false),
        ArrayDef::new_1d(2, "d_force", DType::F64, atoms, true),
    ];
    let mut warps = Vec::new();
    for block in 0..blocks {
        for warp in 0..geometry.warps_per_block() {
            let tids: Vec<u64> = warp_tids(block, warp, threads).collect();
            let mut ops = vec![tid_preamble()];
            // Own position.
            ops.push(addr(0));
            ops.push(load(0, tids.iter().copied()));
            ops.push(SymOp::WaitLoads);
            for j in 0..neighbors {
                // Coalesced neighbor-index load: neighList[j*N + i].
                let nl_idx: Vec<u64> = tids.iter().map(|&i| j * atoms + i).collect();
                ops.push(addr(1));
                ops.push(load(1, nl_idx.iter().copied()));
                ops.push(SymOp::WaitLoads);
                // Scattered position gather.
                let gather: Vec<u64> = nl_idx.iter().map(|&k| neigh[k as usize]).collect();
                ops.push(addr(0));
                ops.push(load(0, gather));
                ops.push(SymOp::WaitLoads);
                // LJ kernel: r2, r6, force scale (double precision).
                ops.push(SymOp::Fp64(6));
                ops.push(SymOp::FpAlu(2));
            }
            ops.push(addr(2));
            ops.push(store(2, tids.iter().copied()));
            warps.push(WarpTrace { block, warp, ops });
        }
    }
    KernelTrace {
        name: "compute_lj_force".into(),
        arrays,
        geometry,
        warps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbor_index_loads_are_coalesced() {
        let kt = build(Scale::Test);
        for op in &kt.warps[0].ops {
            if let SymOp::Access(m) = op {
                if m.array.0 == 1 {
                    let idx: Vec<u64> = m
                        .idx
                        .iter()
                        .flatten()
                        .map(|i| {
                            let hms_trace::ElemIdx::Lin(i) = i else {
                                panic!()
                            };
                            *i
                        })
                        .collect();
                    assert!(idx.windows(2).all(|p| p[1] == p[0] + 1));
                }
            }
        }
    }

    #[test]
    fn position_gathers_are_scattered() {
        let kt = build(Scale::Test);
        let mut scattered = 0u32;
        let mut total = 0u32;
        for op in &kt.warps[0].ops {
            if let SymOp::Access(m) = op {
                if m.array.0 == 0 && !m.is_store {
                    total += 1;
                    let idx: Vec<u64> = m
                        .idx
                        .iter()
                        .flatten()
                        .map(|i| {
                            let hms_trace::ElemIdx::Lin(i) = i else {
                                panic!()
                            };
                            *i
                        })
                        .collect();
                    if idx.windows(2).any(|p| p[1] != p[0] + 1) {
                        scattered += 1;
                    }
                }
            }
        }
        // First load (own position) is contiguous; the gathers are not.
        assert!(total >= 2);
        assert!(scattered >= total - 1);
    }

    #[test]
    fn uses_double_precision_pipeline() {
        let kt = build(Scale::Test);
        assert!(kt.warps[0].ops.iter().any(|o| matches!(o, SymOp::Fp64(_))));
    }
}
