//! CUDA SDK `matrixMul`: tiled matrix multiply with shared-memory
//! staging tiles `As`/`Bs`.
//!
//! The SDK default keeps the tiles in shared memory; Table IV explores
//! moving the input operands `A` and `B` into 1-D and 2-D texture
//! memory. The `B` operand's tile loads walk columns of a row-major
//! matrix — the access the 2-D texture layout accelerates.

use hms_trace::{KernelTrace, SymOp, WarpTrace};
use hms_types::{ArrayDef, DType, Geometry};

use crate::common::{addr, load, load_xy, store, store_xy, WARP};
use crate::Scale;

/// Tile edge (threads per block = TILE x TILE / how we map warps).
pub const TILE: u64 = 16;

pub fn build(scale: Scale) -> KernelTrace {
    let n: u64 = match scale {
        Scale::Test => 32,
        Scale::Full => 128,
    };
    build_sized(n)
}

/// [`build`] at an explicit matrix edge (`n` must be a multiple of [`TILE`]).
pub fn build_sized(n: u64) -> KernelTrace {
    let tiles = n / TILE;
    let blocks = (tiles * tiles) as u32;
    // One block computes a TILE x TILE output tile with TILE*TILE = 256
    // threads = 8 warps (2 rows of the tile per warp at TILE=16).
    let threads = (TILE * TILE) as u32;
    let geometry = Geometry::new(blocks, threads);
    let arrays = vec![
        ArrayDef::new_2d(0, "A", DType::F32, n, n, false),
        ArrayDef::new_2d(1, "B", DType::F32, n, n, false),
        ArrayDef::new_2d(2, "C", DType::F32, n, n, true),
        ArrayDef::new_1d(3, "As", DType::F32, TILE * TILE, true)
            .scratch()
            .per_block(),
        ArrayDef::new_1d(4, "Bs", DType::F32, TILE * TILE, true)
            .scratch()
            .per_block(),
    ];
    let rows_per_warp = WARP / TILE; // 2
    let mut warps = Vec::new();
    for block in 0..blocks {
        let tx = (u64::from(block) % tiles) * TILE;
        let ty = (u64::from(block) / tiles) * TILE;
        for warp in 0..geometry.warps_per_block() {
            let r0 = u64::from(warp) * rows_per_warp; // first tile row of this warp
            let mut ops = vec![SymOp::IntAlu(4)]; // 2-D thread-id setup
            for t in 0..tiles {
                // Stage A(ty + r, t*TILE + c) and B(t*TILE + r, tx + c).
                let a_coords: Vec<(u64, u64)> = (0..WARP)
                    .map(|l| (t * TILE + l % TILE, ty + r0 + l / TILE))
                    .collect();
                let b_coords: Vec<(u64, u64)> = (0..WARP)
                    .map(|l| (tx + l % TILE, t * TILE + r0 + l / TILE))
                    .collect();
                let tile_idx: Vec<u64> = (0..WARP)
                    .map(|l| (r0 + l / TILE) * TILE + l % TILE)
                    .collect();
                ops.push(addr(0));
                ops.push(load_xy(0, a_coords));
                ops.push(addr(1));
                ops.push(load_xy(1, b_coords));
                ops.push(SymOp::WaitLoads);
                ops.push(addr(3));
                ops.push(store(3, tile_idx.iter().copied()));
                ops.push(addr(4));
                ops.push(store(4, tile_idx.iter().copied()));
                ops.push(SymOp::SyncThreads);
                // Inner product over the staged tile.
                for k in 0..TILE {
                    let as_idx: Vec<u64> = (0..WARP).map(|l| (r0 + l / TILE) * TILE + k).collect();
                    let bs_idx: Vec<u64> = (0..WARP).map(|l| k * TILE + l % TILE).collect();
                    ops.push(addr(3));
                    ops.push(load(3, as_idx));
                    ops.push(addr(4));
                    ops.push(load(4, bs_idx));
                    ops.push(SymOp::WaitLoads);
                    ops.push(SymOp::FpAlu(1)); // fma
                }
                ops.push(SymOp::SyncThreads);
            }
            let c_coords: Vec<(u64, u64)> = (0..WARP)
                .map(|l| (tx + l % TILE, ty + r0 + l / TILE))
                .collect();
            ops.push(addr(2));
            ops.push(store_xy(2, c_coords));
            warps.push(WarpTrace { block, warp, ops });
        }
    }
    KernelTrace {
        name: "matrixMul".into(),
        arrays,
        geometry,
        warps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiles_are_block_scoped_scratch() {
        let kt = build(Scale::Test);
        assert!(kt.arrays[3].scratch && kt.arrays[3].per_block);
        assert!(kt.arrays[4].scratch && kt.arrays[4].per_block);
    }

    #[test]
    fn inner_product_structure() {
        let kt = build(Scale::Test);
        let syncs = kt.warps[0]
            .ops
            .iter()
            .filter(|o| matches!(o, SymOp::SyncThreads))
            .count() as u64;
        let tiles = 32 / TILE;
        assert_eq!(syncs, 2 * tiles);
        let fmas: u64 = kt.warps[0]
            .ops
            .iter()
            .map(|o| match o {
                SymOp::FpAlu(n) => u64::from(*n),
                _ => 0,
            })
            .sum();
        assert_eq!(fmas, tiles * TILE);
    }
}
