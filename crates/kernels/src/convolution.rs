//! CUDA SDK `convolutionSeparable`: the rows pass (`convo1`) and the
//! columns pass (`convo2`).
//!
//! Both passes read a small coefficient array uniformly across lanes —
//! the textbook constant-memory workload (the SDK keeps `c_Kernel` in
//! constant memory; Table IV tests moving it to global and texture) —
//! while the image `d_Src` is the texture-placement candidate
//! (`d_Src(G->T)`, `d_Src(G->2T)`). The columns pass walks the image
//! vertically, so its global-memory accesses coalesce per row but thrash
//! caches across rows; the 2-D texture layout fixes that.

use hms_trace::{KernelTrace, SymOp, WarpTrace};
use hms_types::{ArrayDef, DType, Geometry};

use crate::common::{addr, load_uniform, load_xy, store_xy, tid_preamble, WARP};
use crate::Scale;

/// Half-width of the separable filter (kernel length = 2R + 1).
pub const RADIUS: u64 = 4;

fn build_pass(name: &str, vertical: bool, scale: Scale) -> KernelTrace {
    let (dim, rows_per_block) = match scale {
        Scale::Test => (64u64, 4u32),
        Scale::Full => (160u64, 8u32),
    };
    let klen = 2 * RADIUS + 1;
    let tiles_x = dim / WARP;
    let tiles_y = dim / u64::from(rows_per_block);
    let blocks = (tiles_x * tiles_y) as u32;
    let geometry = Geometry::new(blocks, 32 * rows_per_block);
    let arrays = vec![
        ArrayDef::new_2d(0, "d_Src", DType::F32, dim, dim, false),
        ArrayDef::new_1d(1, "c_Kernel", DType::F32, klen, false),
        ArrayDef::new_2d(2, "d_Dst", DType::F32, dim, dim, true),
    ];
    let mut warps = Vec::new();
    for block in 0..blocks {
        let bx = (u64::from(block) % tiles_x) * WARP;
        let by = (u64::from(block) / tiles_x) * u64::from(rows_per_block);
        for warp in 0..geometry.warps_per_block() {
            let y = by + u64::from(warp);
            let mut ops = vec![tid_preamble(), SymOp::IntAlu(2)];
            for k in 0..klen {
                let off = k as i64 - RADIUS as i64;
                let taps: Vec<(u64, u64)> = (0..WARP)
                    .map(|l| {
                        let (mut x, mut ty) = (bx + l, y);
                        if vertical {
                            ty = (ty as i64 + off).clamp(0, dim as i64 - 1) as u64;
                        } else {
                            x = (x as i64 + off).clamp(0, dim as i64 - 1) as u64;
                        }
                        (x, ty)
                    })
                    .collect();
                ops.push(addr(0));
                ops.push(load_xy(0, taps));
                // The coefficient index is loop-invariant per iteration:
                // a uniform broadcast read.
                ops.push(addr(1));
                ops.push(load_uniform(1, k));
                ops.push(SymOp::WaitLoads);
                ops.push(SymOp::FpAlu(1)); // fma into the accumulator
            }
            let out: Vec<(u64, u64)> = (0..WARP).map(|l| (bx + l, y)).collect();
            ops.push(addr(2));
            ops.push(store_xy(2, out));
            warps.push(WarpTrace { block, warp, ops });
        }
    }
    KernelTrace {
        name: name.into(),
        arrays,
        geometry,
        warps,
    }
}

/// The rows pass (`convolutionRowsKernel`, "convo1").
pub fn build_rows(scale: Scale) -> KernelTrace {
    build_pass("convolutionRowsKernel", false, scale)
}

/// The columns pass (`convolutionColumnsKernel`, "convo2").
pub fn build_cols(scale: Scale) -> KernelTrace {
    build_pass("convolutionColumnsKernel", true, scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hms_trace::{ElemIdx, MemRef};

    fn kernel_loads(kt: &KernelTrace) -> Vec<&MemRef> {
        kt.warps[0]
            .ops
            .iter()
            .filter_map(|o| match o {
                SymOp::Access(m) if !m.is_store && m.array.0 == 1 => Some(m),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn coefficient_reads_are_uniform() {
        let kt = build_rows(Scale::Test);
        let loads = kernel_loads(&kt);
        assert_eq!(loads.len() as u64, 2 * RADIUS + 1);
        for m in loads {
            let first = m.idx[0];
            assert!(m.idx.iter().all(|i| *i == first));
        }
    }

    #[test]
    fn passes_differ_in_walk_direction() {
        let rows = build_rows(Scale::Test);
        let cols = build_cols(Scale::Test);
        let first_tap = |kt: &KernelTrace| -> (u64, u64) {
            for op in &kt.warps[0].ops {
                if let SymOp::Access(m) = op {
                    if m.array.0 == 0 {
                        let Some(ElemIdx::XY(x, y)) = m.idx[0] else {
                            panic!()
                        };
                        return (x, y);
                    }
                }
            }
            panic!("no src load")
        };
        // k = 0 means offset -RADIUS: horizontal for rows, vertical for
        // cols (clamped at the border).
        assert_eq!(first_tap(&rows), (0, 0));
        assert_eq!(first_tap(&cols), (0, 0));
        // Check an interior warp instead.
        let interior = |kt: &KernelTrace| -> Vec<(u64, u64)> {
            let w = &kt.warps[kt.warps.len() - 1];
            w.ops
                .iter()
                .filter_map(|op| match op {
                    SymOp::Access(m) if m.array.0 == 0 => {
                        let Some(ElemIdx::XY(x, y)) = m.idx[0] else {
                            panic!()
                        };
                        Some((x, y))
                    }
                    _ => None,
                })
                .collect()
        };
        let r = interior(&rows);
        let c = interior(&cols);
        assert!(r.windows(2).all(|w| w[0].1 == w[1].1), "rows pass fixes y");
        assert!(c.windows(2).all(|w| w[0].0 == w[1].0), "cols pass fixes x");
    }
}
