//! Explicit workload parameters for the most-used kernels.
//!
//! The registry's [`crate::Scale`] presets cover the paper's experiments;
//! downstream users tuning their own placement questions need control
//! over problem sizes. Each `*Params` struct builds the same trace shape
//! as its registry counterpart at a caller-chosen size, with validation
//! of the structural requirements (warp-multiple threads, tileable
//! matrix dimensions, ...).

use hms_trace::KernelTrace;
use hms_types::HmsError;

use crate::Scale;

/// Parameters for the vecadd kernel: `v = a + b` over `n` elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VecAddParams {
    pub blocks: u32,
    pub threads_per_block: u32,
}

impl VecAddParams {
    pub fn build(self) -> Result<KernelTrace, HmsError> {
        if self.blocks == 0 || self.threads_per_block == 0 {
            return Err(HmsError::InvalidInput(
                "vecadd needs a non-empty launch".into(),
            ));
        }
        if !self.threads_per_block.is_multiple_of(32) {
            return Err(HmsError::InvalidInput(
                "vecadd threads_per_block must be a warp multiple".into(),
            ));
        }
        Ok(crate::vecadd::build_sized(
            self.blocks,
            self.threads_per_block,
        ))
    }
}

/// Parameters for the CSR SpMV kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpmvParams {
    /// Matrix rows (one warp per row).
    pub rows: u64,
    /// Maximum nonzeros per row (row lengths are drawn below this).
    pub max_nnz_per_row: u64,
    /// Warps per thread block.
    pub warps_per_block: u32,
    /// RNG seed for the sparsity structure.
    pub seed: u64,
}

impl SpmvParams {
    pub fn build(self) -> Result<KernelTrace, HmsError> {
        if self.rows == 0 || self.max_nnz_per_row == 0 || self.warps_per_block == 0 {
            return Err(HmsError::InvalidInput("spmv needs non-zero sizes".into()));
        }
        Ok(crate::spmv::build_sized(
            self.rows,
            self.max_nnz_per_row,
            self.warps_per_block,
            self.seed,
        ))
    }
}

/// Parameters for the tiled matrix multiply (`n x n`, TILE = 16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatmulParams {
    pub n: u64,
}

impl MatmulParams {
    pub fn build(self) -> Result<KernelTrace, HmsError> {
        if self.n == 0 || !self.n.is_multiple_of(crate::matmul::TILE) {
            return Err(HmsError::InvalidInput(format!(
                "matrixMul n must be a positive multiple of {}",
                crate::matmul::TILE
            )));
        }
        Ok(crate::matmul::build_sized(self.n))
    }
}

/// Parameters matching one of the registry presets.
pub fn preset(scale: Scale) -> (VecAddParams, SpmvParams, MatmulParams) {
    match scale {
        Scale::Test => (
            VecAddParams {
                blocks: 4,
                threads_per_block: 64,
            },
            SpmvParams {
                rows: 16,
                max_nnz_per_row: 48,
                warps_per_block: 2,
                seed: 0x535D,
            },
            MatmulParams { n: 32 },
        ),
        Scale::Full => (
            VecAddParams {
                blocks: 64,
                threads_per_block: 128,
            },
            SpmvParams {
                rows: 256,
                max_nnz_per_row: 96,
                warps_per_block: 4,
                seed: 0x535D,
            },
            MatmulParams { n: 128 },
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_registry_builds() {
        for scale in [Scale::Test, Scale::Full] {
            let (v, s, m) = preset(scale);
            assert_eq!(v.build().unwrap(), crate::vecadd::build(scale));
            assert_eq!(s.build().unwrap(), crate::spmv::build(scale));
            assert_eq!(m.build().unwrap(), crate::matmul::build(scale));
        }
    }

    #[test]
    fn custom_sizes_scale_the_trace() {
        let small = VecAddParams {
            blocks: 2,
            threads_per_block: 64,
        }
        .build()
        .unwrap();
        let large = VecAddParams {
            blocks: 8,
            threads_per_block: 64,
        }
        .build()
        .unwrap();
        assert_eq!(large.warps.len(), 4 * small.warps.len());
        assert_eq!(
            large.arrays[0].dims.elements(),
            4 * small.arrays[0].dims.elements()
        );
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(VecAddParams {
            blocks: 0,
            threads_per_block: 64
        }
        .build()
        .is_err());
        assert!(VecAddParams {
            blocks: 1,
            threads_per_block: 33
        }
        .build()
        .is_err());
        assert!(MatmulParams { n: 24 }.build().is_err());
        assert!(SpmvParams {
            rows: 0,
            max_nnz_per_row: 8,
            warps_per_block: 1,
            seed: 0
        }
        .build()
        .is_err());
    }

    #[test]
    fn spmv_seed_changes_structure() {
        let a = SpmvParams {
            rows: 16,
            max_nnz_per_row: 32,
            warps_per_block: 2,
            seed: 1,
        }
        .build()
        .unwrap();
        let b = SpmvParams {
            rows: 16,
            max_nnz_per_row: 32,
            warps_per_block: 2,
            seed: 2,
        }
        .build()
        .unwrap();
        assert_ne!(a, b);
    }
}
