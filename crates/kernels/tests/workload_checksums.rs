//! Committed per-kernel checksums of the generated workloads.
//!
//! The kernel builders draw their irregular structure (sparse matrices,
//! neighbor lists, graphs, key distributions) from `hms_stats::rng`.
//! These checksums pin the exact generated traces, so any change to the
//! generator — a reseeded kernel, a reordered draw, an edit to the PRNG
//! itself — fails loudly here instead of silently shifting every
//! downstream experiment. If a workload change is *intended*, update the
//! table in the same commit (`cargo test -p hms-kernels --test
//! workload_checksums -- --nocapture` prints the new values on failure).

use hms_kernels::{registry, Scale};

/// FNV-1a over the trace's canonical debug rendering — stable across
/// runs and platforms because every field is ordered data, no pointers
/// or floats-from-timing.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// (kernel, checksum of its `Scale::Test` build) — regenerate with the
/// command in the module docs.
const EXPECTED: [(&str, u64); 19] = [
    ("bfs", 0x78d684be0657430c),
    ("fft", 0x39de55b86b0690a9),
    ("neuralnet", 0x3da779bf19cc0192),
    ("reduction", 0xe680657cf5095816),
    ("scan", 0xf90e5e0214686576),
    ("sort", 0xeb86a7c3ba612757),
    ("stencil2d", 0x945adfdcdb862387),
    ("md5hash", 0x64640b91008bd660),
    ("s3d", 0xef081f3cb74e86c8),
    ("convolutionRows", 0xf3ab386f5b387673),
    ("convolutionCols", 0x069cc9b8b6e10a5b),
    ("md", 0xb932dbfab3af7944),
    ("matrixMul", 0x39efeb3355f511cd),
    ("spmv", 0xf83e13a0731ddcff),
    ("transpose", 0x8611faff01fb4e1a),
    ("cfd", 0xdccbcb4102eef476),
    ("triad", 0xe13e6d5d3198dd3e),
    ("qtc", 0xbf37bdfaa2360f5b),
    ("vecadd", 0xc87b1cf59c7f19bf),
];

#[test]
fn generated_workloads_match_committed_checksums() {
    let specs = registry();
    assert_eq!(
        specs.len(),
        EXPECTED.len(),
        "registry size changed — update EXPECTED"
    );
    let mut failures = Vec::new();
    for spec in &specs {
        let kt = (spec.build)(Scale::Test);
        let got = fnv1a(format!("{kt:?}").as_bytes());
        match EXPECTED.iter().find(|(name, _)| *name == spec.name) {
            Some(&(_, want)) if want == got => {}
            Some(&(_, want)) => {
                failures.push(format!(
                    "{}: got 0x{got:016x}, committed 0x{want:016x}",
                    spec.name
                ));
            }
            None => failures.push(format!(
                "{}: missing from EXPECTED (0x{got:016x})",
                spec.name
            )),
        }
    }
    assert!(
        failures.is_empty(),
        "workload checksums drifted:\n{}",
        failures.join("\n")
    );
}

/// The checksum basis itself must be run-to-run stable, or the table
/// above would be meaningless.
#[test]
fn checksum_basis_is_stable() {
    for spec in registry() {
        let a = fnv1a(format!("{:?}", (spec.build)(Scale::Test)).as_bytes());
        let b = fnv1a(format!("{:?}", (spec.build)(Scale::Test)).as_bytes());
        assert_eq!(a, b, "{}: unstable checksum basis", spec.name);
    }
}
